//! The write-ahead intent log.
//!
//! Every northbound intent — connection setup/teardown, BoD order and
//! release, calendar reserve/cancel, maintenance and protection
//! operations, fault injections — is appended here *before* the
//! controller executes it. Because the whole stack is a deterministic
//! function of genesis state + intent stream (see `tests/determinism.rs`),
//! the log **is** the controller: snapshot + log-tail replay reconstructs
//! a byte-identical replica.
//!
//! ## Format
//!
//! The log is a sequence of fixed-size-bounded **segments**, each a byte
//! buffer of CRC-framed records (`simcore::codec`):
//!
//! ```text
//! segment := header-frame record-frame*
//! header  := [magic u32][version u32][segment-index u64][first-seq u64]
//! record  := [seq u64][at-nanos u64][intent]
//! intent  := [tag u8] fields…
//! ```
//!
//! Records never span segments. A **torn tail** (truncation anywhere in
//! the last segment — the writer died mid-append) is a clean recovery
//! point: the torn record never committed, so it is rolled back. A bad
//! checksum on a *complete* frame, or truncation in a non-final segment,
//! is corruption — acknowledged data is gone, and recovery refuses to
//! guess ([`WalError`]).

use simcore::codec::{frame_into, read_frame, CodecError, Crc32c, Decoder, Encoder, Frame};
use simcore::{DataRate, SimTime};

use otn::ClientSignal;
use photonic::LineRate;

/// `b"GWAL"` little-endian.
pub const WAL_MAGIC: u32 = u32::from_le_bytes(*b"GWAL");
/// Current log format version.
pub const WAL_VERSION: u32 = 1;

/// Tunables of the write-ahead log.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Soft segment size: a segment is sealed once it holds at least one
    /// record and appending the next would exceed this many bytes.
    pub segment_bytes: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 8 * 1024,
        }
    }
}

/// A northbound intent — the unit of durability. One variant per public
/// mutating controller entry point; internal activity (event handlers,
/// nested calls made by composite intents) is *not* logged, because
/// replaying the top-level intent re-derives it deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Intent {
    /// Onboard a tenant.
    RegisterTenant {
        /// Display name.
        name: String,
        /// Quota in bits per second.
        quota_bps: u64,
        /// Restoration priority (lower restores first).
        priority: u8,
    },
    /// Order a full wavelength.
    Wavelength {
        /// Ordering tenant (raw id).
        customer: u32,
        /// A-end node.
        from: u32,
        /// Z-end node.
        to: u32,
        /// Line rate tag (see [`encode_rate`]).
        rate: u8,
    },
    /// Order a 1+1-protected wavelength.
    ProtectedWavelength {
        /// Ordering tenant.
        customer: u32,
        /// A-end node.
        from: u32,
        /// Z-end node.
        to: u32,
        /// Line rate tag.
        rate: u8,
    },
    /// Order a sub-wavelength OTN circuit.
    Subwavelength {
        /// Ordering tenant.
        customer: u32,
        /// A-end node.
        from: u32,
        /// Z-end node.
        to: u32,
        /// Client signal tag (see [`encode_signal`]).
        signal: u8,
    },
    /// Order a composite BoD bundle.
    Bandwidth {
        /// Ordering tenant.
        customer: u32,
        /// A-end node.
        from: u32,
        /// Z-end node.
        to: u32,
        /// Target aggregate rate in bits per second.
        target_bps: u64,
    },
    /// Tear a connection down.
    Teardown {
        /// The connection.
        conn: u32,
    },
    /// Release every member of a BoD bundle.
    ReleaseBundle {
        /// Member connection ids.
        members: Vec<u32>,
    },
    /// Book an advance reservation.
    Reserve {
        /// Booking tenant.
        customer: u32,
        /// A-end node.
        from: u32,
        /// Z-end node.
        to: u32,
        /// Booked rate in bits per second.
        rate_bps: u64,
        /// Window start (nanoseconds of sim time).
        start_ns: u64,
        /// Window end (nanoseconds of sim time).
        end_ns: u64,
    },
    /// Cancel a reservation before its window.
    CancelReservation {
        /// The reservation.
        reservation: u32,
    },
    /// Cap concurrent bookings on a node pair.
    SetBookingCapacity {
        /// One end.
        a: u32,
        /// Other end.
        b: u32,
        /// Capacity in bits per second.
        cap_bps: u64,
    },
    /// Install an OTN switch at a node.
    AddOtnSwitch {
        /// The node.
        node: u32,
        /// Fabric capacity in bits per second.
        fabric_bps: u64,
    },
    /// Provision a carrier-internal OTN trunk.
    ProvisionTrunk {
        /// One end.
        a: u32,
        /// Other end.
        b: u32,
        /// Line rate tag.
        rate: u8,
    },
    /// Sever a fiber (operator-injected fault).
    CutFiber {
        /// The fiber.
        fiber: u32,
        /// Span index along the fiber.
        span: u32,
    },
    /// Dispatch the repair crew for a cut fiber.
    ScheduleRepair {
        /// The fiber.
        fiber: u32,
        /// Repair duration in nanoseconds.
        after_ns: u64,
    },
    /// Fail a transponder (operator-injected fault).
    OtFailure {
        /// The transponder.
        ot: u32,
    },
    /// Bridge-and-roll a connection off the given fibers.
    BridgeRoll {
        /// The connection.
        conn: u32,
        /// Fibers to avoid.
        excluded: Vec<u32>,
    },
    /// Cold-reroute a connection off the given fibers.
    ColdReroute {
        /// The connection.
        conn: u32,
        /// Fibers to avoid.
        excluded: Vec<u32>,
    },
    /// Drain a fiber for planned maintenance.
    StartFiberMaintenance {
        /// The fiber.
        fiber: u32,
    },
    /// Return a fiber from maintenance to service.
    EndFiberMaintenance {
        /// The fiber.
        fiber: u32,
    },
    /// Drain every fiber of a node for planned maintenance.
    StartNodeMaintenance {
        /// The node.
        node: u32,
    },
    /// Re-groom one connection onto a shorter path.
    Regroom {
        /// The connection.
        conn: u32,
    },
    /// Re-groom every eligible connection.
    RegroomAll,
}

/// Encode a [`LineRate`] as a stable tag byte.
pub fn encode_rate(rate: LineRate) -> u8 {
    match rate {
        LineRate::Gbps10 => 0,
        LineRate::Gbps40 => 1,
        LineRate::Gbps100 => 2,
    }
}

/// Decode a [`LineRate`] tag byte.
pub fn decode_rate(tag: u8) -> Result<LineRate, CodecError> {
    match tag {
        0 => Ok(LineRate::Gbps10),
        1 => Ok(LineRate::Gbps40),
        2 => Ok(LineRate::Gbps100),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encode a [`ClientSignal`] as a stable tag byte.
pub fn encode_signal(signal: ClientSignal) -> u8 {
    match signal {
        ClientSignal::GbE => 0,
        ClientSignal::TenGbE => 1,
        ClientSignal::FortyGbE => 2,
        ClientSignal::Oc48 => 3,
        ClientSignal::Oc192 => 4,
    }
}

/// Decode a [`ClientSignal`] tag byte.
pub fn decode_signal(tag: u8) -> Result<ClientSignal, CodecError> {
    match tag {
        0 => Ok(ClientSignal::GbE),
        1 => Ok(ClientSignal::TenGbE),
        2 => Ok(ClientSignal::FortyGbE),
        3 => Ok(ClientSignal::Oc48),
        4 => Ok(ClientSignal::Oc192),
        t => Err(CodecError::BadTag(t)),
    }
}

impl Intent {
    /// Stable variant tag.
    fn tag(&self) -> u8 {
        match self {
            Intent::RegisterTenant { .. } => 1,
            Intent::Wavelength { .. } => 2,
            Intent::ProtectedWavelength { .. } => 3,
            Intent::Subwavelength { .. } => 4,
            Intent::Bandwidth { .. } => 5,
            Intent::Teardown { .. } => 6,
            Intent::ReleaseBundle { .. } => 7,
            Intent::Reserve { .. } => 8,
            Intent::CancelReservation { .. } => 9,
            Intent::SetBookingCapacity { .. } => 10,
            Intent::AddOtnSwitch { .. } => 11,
            Intent::ProvisionTrunk { .. } => 12,
            Intent::CutFiber { .. } => 13,
            Intent::ScheduleRepair { .. } => 14,
            Intent::OtFailure { .. } => 15,
            Intent::BridgeRoll { .. } => 16,
            Intent::ColdReroute { .. } => 17,
            Intent::StartFiberMaintenance { .. } => 18,
            Intent::EndFiberMaintenance { .. } => 19,
            Intent::StartNodeMaintenance { .. } => 20,
            Intent::Regroom { .. } => 21,
            Intent::RegroomAll => 22,
        }
    }

    /// Short label for statistics and traces.
    pub fn label(&self) -> &'static str {
        match self {
            Intent::RegisterTenant { .. } => "register_tenant",
            Intent::Wavelength { .. } => "wavelength",
            Intent::ProtectedWavelength { .. } => "protected_wavelength",
            Intent::Subwavelength { .. } => "subwavelength",
            Intent::Bandwidth { .. } => "bandwidth",
            Intent::Teardown { .. } => "teardown",
            Intent::ReleaseBundle { .. } => "release_bundle",
            Intent::Reserve { .. } => "reserve",
            Intent::CancelReservation { .. } => "cancel_reservation",
            Intent::SetBookingCapacity { .. } => "set_booking_capacity",
            Intent::AddOtnSwitch { .. } => "add_otn_switch",
            Intent::ProvisionTrunk { .. } => "provision_trunk",
            Intent::CutFiber { .. } => "cut_fiber",
            Intent::ScheduleRepair { .. } => "schedule_repair",
            Intent::OtFailure { .. } => "ot_failure",
            Intent::BridgeRoll { .. } => "bridge_roll",
            Intent::ColdReroute { .. } => "cold_reroute",
            Intent::StartFiberMaintenance { .. } => "start_fiber_maintenance",
            Intent::EndFiberMaintenance { .. } => "end_fiber_maintenance",
            Intent::StartNodeMaintenance { .. } => "start_node_maintenance",
            Intent::Regroom { .. } => "regroom",
            Intent::RegroomAll => "regroom_all",
        }
    }

    /// Append this intent's canonical encoding to `e`.
    pub fn encode(&self, e: &mut Encoder) {
        e.u8(self.tag());
        match self {
            Intent::RegisterTenant {
                name,
                quota_bps,
                priority,
            } => {
                e.str(name).u64(*quota_bps).u8(*priority);
            }
            Intent::Wavelength {
                customer,
                from,
                to,
                rate,
            }
            | Intent::ProtectedWavelength {
                customer,
                from,
                to,
                rate,
            } => {
                e.u32(*customer).u32(*from).u32(*to).u8(*rate);
            }
            Intent::Subwavelength {
                customer,
                from,
                to,
                signal,
            } => {
                e.u32(*customer).u32(*from).u32(*to).u8(*signal);
            }
            Intent::Bandwidth {
                customer,
                from,
                to,
                target_bps,
            } => {
                e.u32(*customer).u32(*from).u32(*to).u64(*target_bps);
            }
            Intent::Teardown { conn } => {
                e.u32(*conn);
            }
            Intent::ReleaseBundle { members } => {
                e.u32(members.len() as u32);
                for m in members {
                    e.u32(*m);
                }
            }
            Intent::Reserve {
                customer,
                from,
                to,
                rate_bps,
                start_ns,
                end_ns,
            } => {
                e.u32(*customer)
                    .u32(*from)
                    .u32(*to)
                    .u64(*rate_bps)
                    .u64(*start_ns)
                    .u64(*end_ns);
            }
            Intent::CancelReservation { reservation } => {
                e.u32(*reservation);
            }
            Intent::SetBookingCapacity { a, b, cap_bps } => {
                e.u32(*a).u32(*b).u64(*cap_bps);
            }
            Intent::AddOtnSwitch { node, fabric_bps } => {
                e.u32(*node).u64(*fabric_bps);
            }
            Intent::ProvisionTrunk { a, b, rate } => {
                e.u32(*a).u32(*b).u8(*rate);
            }
            Intent::CutFiber { fiber, span } => {
                e.u32(*fiber).u32(*span);
            }
            Intent::ScheduleRepair { fiber, after_ns } => {
                e.u32(*fiber).u64(*after_ns);
            }
            Intent::OtFailure { ot } => {
                e.u32(*ot);
            }
            Intent::BridgeRoll { conn, excluded } | Intent::ColdReroute { conn, excluded } => {
                e.u32(*conn).u32(excluded.len() as u32);
                for f in excluded {
                    e.u32(*f);
                }
            }
            Intent::StartFiberMaintenance { fiber } | Intent::EndFiberMaintenance { fiber } => {
                e.u32(*fiber);
            }
            Intent::StartNodeMaintenance { node } => {
                e.u32(*node);
            }
            Intent::Regroom { conn } => {
                e.u32(*conn);
            }
            Intent::RegroomAll => {}
        }
    }

    /// Decode one intent from `d`.
    pub fn decode(d: &mut Decoder<'_>) -> Result<Intent, CodecError> {
        let tag = d.u8()?;
        Ok(match tag {
            1 => Intent::RegisterTenant {
                name: d.str()?.to_string(),
                quota_bps: d.u64()?,
                priority: d.u8()?,
            },
            2 => Intent::Wavelength {
                customer: d.u32()?,
                from: d.u32()?,
                to: d.u32()?,
                rate: d.u8()?,
            },
            3 => Intent::ProtectedWavelength {
                customer: d.u32()?,
                from: d.u32()?,
                to: d.u32()?,
                rate: d.u8()?,
            },
            4 => Intent::Subwavelength {
                customer: d.u32()?,
                from: d.u32()?,
                to: d.u32()?,
                signal: d.u8()?,
            },
            5 => Intent::Bandwidth {
                customer: d.u32()?,
                from: d.u32()?,
                to: d.u32()?,
                target_bps: d.u64()?,
            },
            6 => Intent::Teardown { conn: d.u32()? },
            7 => {
                let n = d.u32()? as usize;
                let mut members = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    members.push(d.u32()?);
                }
                Intent::ReleaseBundle { members }
            }
            8 => Intent::Reserve {
                customer: d.u32()?,
                from: d.u32()?,
                to: d.u32()?,
                rate_bps: d.u64()?,
                start_ns: d.u64()?,
                end_ns: d.u64()?,
            },
            9 => Intent::CancelReservation {
                reservation: d.u32()?,
            },
            10 => Intent::SetBookingCapacity {
                a: d.u32()?,
                b: d.u32()?,
                cap_bps: d.u64()?,
            },
            11 => Intent::AddOtnSwitch {
                node: d.u32()?,
                fabric_bps: d.u64()?,
            },
            12 => Intent::ProvisionTrunk {
                a: d.u32()?,
                b: d.u32()?,
                rate: d.u8()?,
            },
            13 => Intent::CutFiber {
                fiber: d.u32()?,
                span: d.u32()?,
            },
            14 => Intent::ScheduleRepair {
                fiber: d.u32()?,
                after_ns: d.u64()?,
            },
            15 => Intent::OtFailure { ot: d.u32()? },
            16 | 17 => {
                let conn = d.u32()?;
                let n = d.u32()? as usize;
                let mut excluded = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    excluded.push(d.u32()?);
                }
                if tag == 16 {
                    Intent::BridgeRoll { conn, excluded }
                } else {
                    Intent::ColdReroute { conn, excluded }
                }
            }
            18 => Intent::StartFiberMaintenance { fiber: d.u32()? },
            19 => Intent::EndFiberMaintenance { fiber: d.u32()? },
            20 => Intent::StartNodeMaintenance { node: d.u32()? },
            21 => Intent::Regroom { conn: d.u32()? },
            22 => Intent::RegroomAll,
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

/// Convenience: a [`DataRate`] from an encoded bps field.
pub fn rate_from_bps(bps: u64) -> DataRate {
    DataRate::from_bps(bps)
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic record sequence number (0-based).
    pub seq: u64,
    /// Sim time the intent was accepted at.
    pub at: SimTime,
    /// The intent itself.
    pub intent: Intent,
}

/// Why the log could not be opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A segment header was missing, had the wrong magic, or an
    /// unsupported version.
    BadHeader {
        /// Segment index.
        segment: usize,
        /// What was wrong.
        detail: String,
    },
    /// A complete frame failed its checksum — acknowledged data is gone.
    Corrupt {
        /// Segment index.
        segment: usize,
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A non-final segment ended mid-frame. Torn tails are only legal in
    /// the last segment (the one being appended at the crash).
    TornMidLog {
        /// Segment index.
        segment: usize,
    },
    /// A frame verified but its payload would not decode.
    BadRecord {
        /// Segment index.
        segment: usize,
        /// Codec-level cause.
        source: CodecError,
    },
    /// Record sequence numbers were not contiguous.
    BadSequence {
        /// Expected sequence number.
        expected: u64,
        /// Found sequence number.
        found: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::BadHeader { segment, detail } => {
                write!(f, "segment {segment}: bad header ({detail})")
            }
            WalError::Corrupt {
                segment,
                stored,
                computed,
            } => write!(
                f,
                "segment {segment}: checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            WalError::TornMidLog { segment } => {
                write!(f, "segment {segment}: torn frame before the final segment")
            }
            WalError::BadRecord { segment, source } => {
                write!(f, "segment {segment}: undecodable record ({source})")
            }
            WalError::BadSequence { expected, found } => {
                write!(f, "record sequence gap: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// What [`Wal::decode`] salvaged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Intact records decoded.
    pub records: u64,
    /// Trailing bytes discarded as a torn tail (0 on a clean log).
    pub torn_bytes: usize,
    /// Whether a torn (never-committed) record was rolled back.
    pub rolled_back_tail: bool,
    /// Segments examined.
    pub segments: usize,
}

/// Summary of one committed group batch (see [`Wal::commit_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchCommit {
    /// Sequence number of the batch's first record.
    pub first_seq: u64,
    /// Records flushed by this commit.
    pub records: u64,
    /// Framed bytes appended to the log by this commit.
    pub bytes: usize,
    /// CRC-32C over the entire appended byte run — the group-commit
    /// integrity check covering every frame of the batch at once.
    pub crc: u32,
}

/// A pending group-commit batch: records accepted (sequence numbers
/// assigned) but not yet flushed into segments.
#[derive(Debug, Clone, Default)]
struct BatchState {
    first_seq: u64,
    pending: Vec<(u64, SimTime, Intent)>,
}

/// The segmented write-ahead log (see module docs).
#[derive(Debug, Clone)]
pub struct Wal {
    cfg: WalConfig,
    segments: Vec<Vec<u8>>,
    next_seq: u64,
    /// Reusable record-encoding scratch: the steady-state append path
    /// allocates nothing (record bytes are built here, then framed
    /// straight into the live segment).
    scratch: Encoder,
    /// Open group-commit batch, if any (None = every append flushes
    /// immediately).
    batch: Option<BatchState>,
    /// Nesting depth of `begin_batch`; only the outermost commit
    /// flushes.
    batch_nesting: u32,
}

impl Wal {
    /// An empty log.
    pub fn new(cfg: WalConfig) -> Wal {
        Wal {
            cfg,
            segments: Vec::new(),
            next_seq: 0,
            scratch: Encoder::new(),
            batch: None,
            batch_nesting: 0,
        }
    }

    /// Rebuild a log by re-appending `records` (recovery reinstalls the
    /// surviving history this way, so a recovered controller keeps
    /// journaling from where the log left off).
    pub fn from_records(cfg: WalConfig, records: &[WalRecord]) -> Wal {
        let mut wal = Wal::new(cfg);
        for r in records {
            let seq = wal.append(r.at, &r.intent);
            debug_assert_eq!(seq, r.seq, "rebuilt log must preserve sequence numbers");
        }
        wal
    }

    /// Records appended so far (== next sequence number).
    pub fn records(&self) -> u64 {
        self.next_seq
    }

    /// The raw segment buffers.
    pub fn segments(&self) -> &[Vec<u8>] {
        &self.segments
    }

    /// Consume the log, yielding its segment buffers — an ownership
    /// handoff for harnesses that outlive the controller, replacing the
    /// old `segments().to_vec()` copy.
    pub fn into_segments(self) -> Vec<Vec<u8>> {
        self.segments
    }

    /// Total bytes across all segments.
    pub fn total_bytes(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// Append `intent` accepted at sim time `at`. Returns its sequence
    /// number.
    ///
    /// Steady state performs **zero heap allocations**: the record is
    /// encoded into a reusable scratch buffer and framed straight into
    /// the live segment ([`simcore::codec::frame_into`]). Inside an open
    /// batch ([`Wal::begin_batch`]) the record is accepted (its sequence
    /// number assigned) but flushed only at [`Wal::commit_batch`].
    pub fn append(&mut self, at: SimTime, intent: &Intent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(b) = self.batch.as_mut() {
            b.pending.push((seq, at, intent.clone()));
            return seq;
        }
        self.write_record(seq, at, intent);
        seq
    }

    /// The pre-optimization append path, kept as the oracle the zero-copy
    /// path is tested against and the honest "before" side of
    /// `repro bench-wal`: a fresh encoder per record, an intermediate
    /// framed `Vec`, and the byte-at-a-time reference CRC. Byte-identical
    /// output to [`Wal::append`] (never deferred by batches).
    pub fn append_reference(&mut self, at: SimTime, intent: &Intent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut e = Encoder::new();
        e.u64(seq).u64(at.as_nanos());
        intent.encode(&mut e);
        let payload = e.finish();
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&simcore::crc32c_reference(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        let need_new = match self.segments.last() {
            None => true,
            Some(seg) => {
                seg.len() > Self::header_len() && seg.len() + rec.len() > self.cfg.segment_bytes
            }
        };
        if need_new {
            self.push_segment(seq);
        }
        self.segments
            .last_mut()
            .expect("segment exists")
            .extend_from_slice(&rec);
        seq
    }

    /// Open a group-commit batch: subsequent appends are accepted but
    /// buffered, to be flushed as one contiguous byte run by
    /// [`Wal::commit_batch`]. Nested begin/commit pairs are collapsed
    /// into the outermost batch.
    pub fn begin_batch(&mut self) {
        self.batch_nesting += 1;
        if self.batch.is_none() {
            self.batch = Some(BatchState {
                first_seq: self.next_seq,
                pending: Vec::new(),
            });
        }
    }

    /// Flush the open batch: every buffered record is encoded and framed
    /// exactly as the one-record-per-append path would have (the segment
    /// bytes are **byte-identical** to a sequence of single appends —
    /// proven by `batch_commit_bytes_equal_single_appends`), appended in
    /// one pass, and covered by a single batch CRC over the whole
    /// appended run. Returns `None` while nested or with no batch open.
    pub fn commit_batch(&mut self) -> Option<BatchCommit> {
        if self.batch_nesting > 0 {
            self.batch_nesting -= 1;
        }
        if self.batch_nesting > 0 {
            return None;
        }
        let b = self.batch.take()?;
        let mut crc = Crc32c::new();
        let mut bytes = 0usize;
        let records = b.pending.len() as u64;
        for (seq, at, intent) in &b.pending {
            let (seg_idx, start) = self.write_record(*seq, *at, intent);
            let run = &self.segments[seg_idx][start..];
            crc.update(run);
            bytes += run.len();
        }
        Some(BatchCommit {
            first_seq: b.first_seq,
            records,
            bytes,
            crc: crc.finish(),
        })
    }

    /// Records accepted into a batch but not yet flushed.
    pub fn batch_pending(&self) -> u64 {
        self.batch.as_ref().map_or(0, |b| b.pending.len() as u64)
    }

    /// Encode, frame, and write one record into the live segment (shared
    /// by the immediate append path and the batch flush). Returns the
    /// segment index and the byte offset the record's frame begins at.
    fn write_record(&mut self, seq: u64, at: SimTime, intent: &Intent) -> (usize, usize) {
        self.scratch.clear();
        self.scratch.u64(seq).u64(at.as_nanos());
        intent.encode(&mut self.scratch);
        let rec_len = 8 + self.scratch.len();
        let need_new = match self.segments.last() {
            None => true,
            Some(seg) => {
                // Seal once a record is present and the next would
                // overflow; a single oversized record still gets a
                // segment to itself.
                seg.len() > Self::header_len() && seg.len() + rec_len > self.cfg.segment_bytes
            }
        };
        if need_new {
            self.push_segment(seq);
        }
        let idx = self.segments.len() - 1;
        let seg = &mut self.segments[idx];
        let start = seg.len();
        frame_into(self.scratch.as_slice(), seg);
        (idx, start)
    }

    /// Start a fresh segment whose header names `first_seq`. The header
    /// is built on the stack — no encoder allocation.
    fn push_segment(&mut self, first_seq: u64) {
        let mut seg = Vec::with_capacity(self.cfg.segment_bytes.min(64 * 1024));
        let mut h = [0u8; 24];
        h[0..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        h[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
        h[8..16].copy_from_slice(&(self.segments.len() as u64).to_le_bytes());
        h[16..24].copy_from_slice(&first_seq.to_le_bytes());
        frame_into(&h, &mut seg);
        self.segments.push(seg);
    }

    /// Byte length of an encoded segment header frame.
    fn header_len() -> usize {
        8 + 4 + 4 + 8 + 8
    }

    /// Borrowed view of the raw segments truncated to `bytes` total — the
    /// crash-fuzz primitive: "the process died after flushing exactly
    /// this many bytes". No segment bytes are copied.
    pub fn truncated_view(&self, bytes: usize) -> Vec<&[u8]> {
        Self::truncate_segments(&self.segments, bytes)
    }

    /// [`Wal::truncated_view`] over raw segments owned elsewhere.
    pub fn truncate_segments<S: AsRef<[u8]>>(segments: &[S], bytes: usize) -> Vec<&[u8]> {
        let mut out = Vec::new();
        let mut budget = bytes;
        for seg in segments {
            let seg = seg.as_ref();
            if budget == 0 {
                break;
            }
            let take = seg.len().min(budget);
            out.push(&seg[..take]);
            budget -= take;
        }
        out
    }

    /// Decode raw segments into records, tolerating a torn tail in the
    /// final segment and refusing anything else (see module docs).
    /// Accepts any slice-of-byte-slices (`&[Vec<u8>]`, `&[&[u8]]`, …) so
    /// crash harnesses can hand in borrowed truncation views.
    pub fn decode<S: AsRef<[u8]>>(
        segments: &[S],
    ) -> Result<(Vec<WalRecord>, OpenReport), WalError> {
        let total = segments.len();
        Self::merge_segments(
            segments
                .iter()
                .enumerate()
                .map(|(i, seg)| Self::decode_segment(i, seg.as_ref())),
            total,
        )
    }

    /// [`Wal::decode`] with segment decode + CRC verification fanned out
    /// across `threads` worker threads (deterministic round-robin
    /// sharding; the merge — header/torn classification, sequence
    /// contiguity — stays sequential, so the result is identical to the
    /// sequential oracle at every input, including every error case).
    pub fn decode_parallel<S: AsRef<[u8]> + Sync>(
        segments: &[S],
        threads: usize,
    ) -> Result<(Vec<WalRecord>, OpenReport), WalError> {
        let total = segments.len();
        let threads = threads.max(1).min(total.max(1));
        if threads <= 1 || total <= 1 {
            return Self::decode(segments);
        }
        let mut slots: Vec<Option<SegmentDecode>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        // Round-robin shards: worker w owns segments w, w+threads, …
        let mut work: Vec<Vec<(&mut Option<SegmentDecode>, usize)>> = Vec::new();
        work.resize_with(threads, Vec::new);
        for (i, slot) in slots.iter_mut().enumerate() {
            work[i % threads].push((slot, i));
        }
        std::thread::scope(|s| {
            for lot in work {
                s.spawn(|| {
                    for (slot, i) in lot {
                        *slot = Some(Self::decode_segment(i, segments[i].as_ref()));
                    }
                });
            }
        });
        Self::merge_segments(
            slots.into_iter().map(|r| r.expect("worker filled slot")),
            total,
        )
    }

    /// Decode one segment in isolation: header check, frame CRCs, record
    /// decode. Cross-segment concerns (is a torn tail legal here?
    /// sequence contiguity) are deferred to [`Wal::merge_segments`].
    fn decode_segment(i: usize, seg: &[u8]) -> SegmentDecode {
        let mut out = SegmentDecode {
            index: i,
            records: Vec::new(),
            torn_bytes: 0,
            err: None,
        };
        let mut pos = 0;
        // Header frame.
        match read_frame(seg, &mut pos) {
            Some(Frame::Ok(hdr)) => {
                let mut d = Decoder::new(hdr);
                let parse = (|| -> Result<(u32, u32, u64), CodecError> {
                    let magic = d.u32()?;
                    let version = d.u32()?;
                    let index = d.u64()?;
                    let _first_seq = d.u64()?;
                    Ok((magic, version, index))
                })();
                match parse {
                    Ok((magic, version, index)) => {
                        if magic != WAL_MAGIC {
                            out.err = Some(WalError::BadHeader {
                                segment: i,
                                detail: format!("magic {magic:#010x}"),
                            });
                            return out;
                        }
                        if version != WAL_VERSION {
                            out.err = Some(WalError::BadHeader {
                                segment: i,
                                detail: format!("version {version}"),
                            });
                            return out;
                        }
                        if index != i as u64 {
                            out.err = Some(WalError::BadHeader {
                                segment: i,
                                detail: format!("index {index}, expected {i}"),
                            });
                            return out;
                        }
                    }
                    Err(e) => {
                        out.err = Some(WalError::BadHeader {
                            segment: i,
                            detail: e.to_string(),
                        });
                        return out;
                    }
                }
            }
            Some(Frame::Torn { bytes }) => {
                // The crash tore the segment open itself; whether that is
                // a clean rollback or mid-log corruption depends on
                // whether this is the final segment — merge decides.
                out.torn_bytes = bytes;
                return out;
            }
            Some(Frame::Corrupt { stored, computed }) => {
                out.err = Some(WalError::Corrupt {
                    segment: i,
                    stored,
                    computed,
                });
                return out;
            }
            None => {
                out.err = Some(WalError::BadHeader {
                    segment: i,
                    detail: "empty segment".into(),
                });
                return out;
            }
        }
        // Record frames.
        loop {
            match read_frame(seg, &mut pos) {
                None => break,
                Some(Frame::Ok(payload)) => {
                    let mut d = Decoder::new(payload);
                    let rec = (|| -> Result<WalRecord, CodecError> {
                        let seq = d.u64()?;
                        let at = SimTime::from_nanos(d.u64()?);
                        let intent = Intent::decode(&mut d)?;
                        Ok(WalRecord { seq, at, intent })
                    })();
                    match rec {
                        Ok(rec) => out.records.push(rec),
                        Err(source) => {
                            out.err = Some(WalError::BadRecord { segment: i, source });
                            return out;
                        }
                    }
                }
                Some(Frame::Torn { bytes }) => {
                    out.torn_bytes = bytes;
                    break;
                }
                Some(Frame::Corrupt { stored, computed }) => {
                    out.err = Some(WalError::Corrupt {
                        segment: i,
                        stored,
                        computed,
                    });
                    return out;
                }
            }
        }
        out
    }

    /// Stitch per-segment decodes back into one history, in segment
    /// order: validate sequence contiguity (records precede any
    /// positional error inside their segment, matching the sequential
    /// scan's error ordering), classify torn tails (legal only in the
    /// final segment), and surface the first error.
    fn merge_segments(
        segs: impl Iterator<Item = SegmentDecode>,
        total: usize,
    ) -> Result<(Vec<WalRecord>, OpenReport), WalError> {
        let mut records = Vec::new();
        let mut report = OpenReport {
            segments: total,
            ..OpenReport::default()
        };
        for sd in segs {
            let last = sd.index + 1 == total;
            for rec in sd.records {
                let expected = records.len() as u64;
                if rec.seq != expected {
                    return Err(WalError::BadSequence {
                        expected,
                        found: rec.seq,
                    });
                }
                records.push(rec);
            }
            if let Some(e) = sd.err {
                return Err(e);
            }
            if sd.torn_bytes > 0 {
                if last {
                    report.torn_bytes += sd.torn_bytes;
                    report.rolled_back_tail = true;
                } else {
                    return Err(WalError::TornMidLog { segment: sd.index });
                }
            }
        }
        report.records = records.len() as u64;
        Ok((records, report))
    }
}

/// One segment's isolated decode (see [`Wal::decode_segment`]).
struct SegmentDecode {
    index: usize,
    records: Vec<WalRecord>,
    /// Trailing bytes of an incomplete frame (0 = segment ended cleanly).
    torn_bytes: usize,
    /// Positional error (bad header, corrupt frame, undecodable record).
    err: Option<WalError>,
}

/// Worker-thread count for parallel WAL decode: the `REPRO_THREADS` env
/// override (for reproducible CI timings), else available parallelism.
pub fn decode_threads() -> usize {
    std::env::var("REPRO_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_intents() -> Vec<Intent> {
        vec![
            Intent::RegisterTenant {
                name: "acme".into(),
                quota_bps: 100_000_000_000,
                priority: 100,
            },
            Intent::Wavelength {
                customer: 0,
                from: 0,
                to: 3,
                rate: 0,
            },
            Intent::Bandwidth {
                customer: 0,
                from: 0,
                to: 3,
                target_bps: 12_000_000_000,
            },
            Intent::Reserve {
                customer: 0,
                from: 1,
                to: 2,
                rate_bps: 12_000_000_000,
                start_ns: 7_200_000_000_000,
                end_ns: 14_400_000_000_000,
            },
            Intent::ReleaseBundle {
                members: vec![1, 2, 3],
            },
            Intent::BridgeRoll {
                conn: 4,
                excluded: vec![0, 5],
            },
            Intent::CutFiber { fiber: 2, span: 1 },
            Intent::RegroomAll,
        ]
    }

    #[test]
    fn intent_roundtrip_every_variant() {
        for intent in sample_intents() {
            let mut e = Encoder::new();
            intent.encode(&mut e);
            let buf = e.finish();
            let mut d = Decoder::new(&buf);
            assert_eq!(Intent::decode(&mut d).unwrap(), intent);
            assert!(d.is_done(), "{intent:?} left bytes behind");
        }
    }

    #[test]
    fn wal_roundtrip_and_segmentation() {
        let mut wal = Wal::new(WalConfig { segment_bytes: 128 });
        let intents = sample_intents();
        for (i, intent) in intents.iter().enumerate() {
            wal.append(SimTime::from_secs(i as u64), intent);
        }
        assert!(
            wal.segments().len() > 1,
            "128-byte segments must roll over, got {}",
            wal.segments().len()
        );
        let (records, report) = Wal::decode(wal.segments()).unwrap();
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(records.len(), intents.len());
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.at, SimTime::from_secs(i as u64));
            assert_eq!(rec.intent, intents[i]);
        }
    }

    #[test]
    fn torn_tail_at_every_byte_rolls_back_cleanly() {
        let mut wal = Wal::new(WalConfig::default());
        for (i, intent) in sample_intents().iter().enumerate() {
            wal.append(SimTime::from_secs(i as u64), intent);
        }
        let total = wal.total_bytes();
        for cut in 0..=total {
            let segs = wal.truncated_view(cut);
            let (records, report) =
                Wal::decode(&segs).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert!(records.len() <= sample_intents().len());
            if cut == total {
                assert_eq!(report.torn_bytes, 0);
            }
            // A decoded prefix is always a true prefix of the full log.
            let (full, _) = Wal::decode(wal.segments()).unwrap();
            assert_eq!(records[..], full[..records.len()]);
        }
    }

    #[test]
    fn corruption_is_an_error_not_a_rollback() {
        let mut wal = Wal::new(WalConfig::default());
        for (i, intent) in sample_intents().iter().enumerate() {
            wal.append(SimTime::from_secs(i as u64), intent);
        }
        // Flip one payload byte in the middle of the (only) segment.
        let mut segs: Vec<Vec<u8>> = wal.segments().to_vec();
        let mid = segs[0].len() / 2;
        segs[0][mid] ^= 0x40;
        match Wal::decode(&segs) {
            Err(WalError::Corrupt { .. }) | Err(WalError::BadRecord { .. }) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_in_non_final_segment_is_an_error() {
        let mut wal = Wal::new(WalConfig { segment_bytes: 96 });
        for (i, intent) in sample_intents().iter().enumerate() {
            wal.append(SimTime::from_secs(i as u64), intent);
        }
        assert!(wal.segments().len() >= 2);
        let mut segs: Vec<Vec<u8>> = wal.segments().to_vec();
        let cut = segs[0].len() - 3;
        segs[0].truncate(cut);
        assert_eq!(Wal::decode(&segs), Err(WalError::TornMidLog { segment: 0 }));
    }

    #[test]
    fn rebuilt_log_is_byte_identical() {
        let mut wal = Wal::new(WalConfig { segment_bytes: 256 });
        for (i, intent) in sample_intents().iter().enumerate() {
            wal.append(SimTime::from_secs(i as u64), intent);
        }
        let (records, _) = Wal::decode(wal.segments()).unwrap();
        let rebuilt = Wal::from_records(WalConfig { segment_bytes: 256 }, &records);
        assert_eq!(rebuilt.segments(), wal.segments());
        assert_eq!(rebuilt.records(), wal.records());
    }

    #[test]
    fn zero_copy_append_matches_reference_path() {
        // The optimized path must be byte-identical to the pre-PR oracle
        // across a segment-size sweep (exercising rollover boundaries).
        for segment_bytes in [64, 96, 128, 256, 8192] {
            let mut fast = Wal::new(WalConfig { segment_bytes });
            let mut slow = Wal::new(WalConfig { segment_bytes });
            for (i, intent) in sample_intents().iter().enumerate() {
                let a = fast.append(SimTime::from_secs(i as u64), intent);
                let b = slow.append_reference(SimTime::from_secs(i as u64), intent);
                assert_eq!(a, b);
            }
            assert_eq!(
                fast.segments(),
                slow.segments(),
                "segment_bytes={segment_bytes}"
            );
        }
    }

    #[test]
    fn batch_commit_bytes_equal_single_appends() {
        let intents = sample_intents();
        let mut single = Wal::new(WalConfig { segment_bytes: 128 });
        for (i, intent) in intents.iter().enumerate() {
            single.append(SimTime::from_secs(i as u64), intent);
        }
        let mut batched = Wal::new(WalConfig { segment_bytes: 128 });
        batched.begin_batch();
        for (i, intent) in intents.iter().enumerate() {
            let seq = batched.append(SimTime::from_secs(i as u64), intent);
            assert_eq!(seq, i as u64, "seq assigned eagerly inside a batch");
        }
        assert_eq!(batched.batch_pending(), intents.len() as u64);
        assert!(
            batched.segments().is_empty(),
            "nothing flushed until commit"
        );
        let commit = batched.commit_batch().expect("outermost commit flushes");
        assert_eq!(commit.first_seq, 0);
        assert_eq!(commit.records, intents.len() as u64);
        assert_eq!(batched.segments(), single.segments());
        // The batch CRC covers exactly the appended record frames.
        let run: Vec<u8> = single
            .segments()
            .iter()
            .flat_map(|s| s[Wal::header_len()..].to_vec())
            .collect();
        assert_eq!(commit.bytes, run.len());
        assert_eq!(commit.crc, simcore::crc32c(&run));
    }

    #[test]
    fn nested_batches_collapse_into_outermost() {
        let intents = sample_intents();
        let mut wal = Wal::new(WalConfig::default());
        wal.begin_batch();
        wal.append(SimTime::ZERO, &intents[0]);
        wal.begin_batch();
        wal.append(SimTime::from_secs(1), &intents[1]);
        assert!(wal.commit_batch().is_none(), "inner commit defers");
        assert!(wal.segments().is_empty());
        let commit = wal.commit_batch().expect("outer commit flushes");
        assert_eq!(commit.records, 2);
        let (records, _) = Wal::decode(wal.segments()).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn parallel_decode_matches_sequential_everywhere() {
        let mut wal = Wal::new(WalConfig { segment_bytes: 96 });
        for (i, intent) in sample_intents().iter().enumerate() {
            wal.append(SimTime::from_secs(i as u64), intent);
        }
        assert!(wal.segments().len() >= 3, "want several segments");
        let total = wal.total_bytes();
        // Every crash offset, both intact and truncated logs, every
        // thread count: parallel decode must agree exactly.
        for threads in [1, 2, 3, 8] {
            for cut in 0..=total {
                let segs = wal.truncated_view(cut);
                let seq = Wal::decode(&segs);
                let par = Wal::decode_parallel(&segs, threads);
                assert_eq!(seq, par, "cut={cut} threads={threads}");
            }
        }
        // Error cases must match too: corruption and mid-log tears.
        let mut corrupt: Vec<Vec<u8>> = wal.segments().to_vec();
        let mid = corrupt[1].len() / 2;
        corrupt[1][mid] ^= 0x40;
        assert_eq!(Wal::decode(&corrupt), Wal::decode_parallel(&corrupt, 4));
        let mut torn: Vec<Vec<u8>> = wal.segments().to_vec();
        let cut = torn[0].len() - 3;
        torn[0].truncate(cut);
        assert_eq!(Wal::decode(&torn), Wal::decode_parallel(&torn, 4));
        assert_eq!(
            Wal::decode_parallel(&torn, 4),
            Err(WalError::TornMidLog { segment: 0 })
        );
    }

    #[test]
    fn decode_accepts_borrowed_slices() {
        let mut wal = Wal::new(WalConfig::default());
        for (i, intent) in sample_intents().iter().enumerate() {
            wal.append(SimTime::from_secs(i as u64), intent);
        }
        let views: Vec<&[u8]> = wal.segments().iter().map(|s| s.as_slice()).collect();
        let (a, _) = Wal::decode(&views).unwrap();
        let (b, _) = Wal::decode(wal.segments()).unwrap();
        assert_eq!(a, b);
    }

    mod batch_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Group commit with arbitrary batch boundaries produces the
            /// same WAL bytes as one-append-per-record.
            #[test]
            fn batching_never_changes_bytes(
                boundaries in prop::collection::vec(any::<bool>(), 8..9),
                segment_bytes in 64usize..512,
            ) {
                let intents = sample_intents();
                let mut single = Wal::new(WalConfig { segment_bytes });
                for (i, intent) in intents.iter().enumerate() {
                    single.append(SimTime::from_secs(i as u64), intent);
                }
                let mut batched = Wal::new(WalConfig { segment_bytes });
                let mut open = false;
                for (i, intent) in intents.iter().enumerate() {
                    // A `true` boundary closes any open batch and opens a
                    // new one; records before the first boundary go down
                    // the immediate path.
                    if boundaries[i] {
                        if open {
                            batched.commit_batch();
                        }
                        batched.begin_batch();
                        open = true;
                    }
                    batched.append(SimTime::from_secs(i as u64), intent);
                }
                if open {
                    batched.commit_batch();
                }
                prop_assert_eq!(batched.segments(), single.segments());
                prop_assert_eq!(batched.records(), single.records());
            }
        }
    }
}
