//! Failure detection, localization and automated restoration.
//!
//! §1 item 3: today a full-wavelength customer either buys 1+1 protection
//! or waits 4–12 hours for manual repair. GRIPhoN's answer is automated:
//! correlate the alarm storm to a root cause, then re-provision each
//! impacted connection over a surviving route — "far faster than repair
//! of the underlying fault", though "not as fast as 1+1".
//!
//! ## Localization
//!
//! A single fiber cut produces: per-wavelength LOS at the two adjacent
//! ROADM degrees (~50 ms), line telemetry declaring the fiber down
//! (~500 ms), and terminal LOS at every transponder whose path crossed
//! the cut (~2.5 s, EMS polling). The localizer treats the `FiberDown`
//! telemetry as the root cause and counts the LOS alarms as corroborating
//! symptoms; restoration is triggered exactly once per root cause.
//!
//! ## Restoration discipline
//!
//! Impacted connections are restored *sequentially* (one EMS provisioning
//! workflow at a time) in connection-id order. This models the testbed's
//! serialized EMS command handling and yields the paper's "few minutes"
//! figure for multi-connection restoration events. Each restoration is a
//! full wavelength setup on a surviving route — the same 60–70 s workflow
//! Table 2 measures — so a cut hitting `k` connections restores the last
//! one after roughly `0.5 s detection + k × setup`.
//!
//! Failed trunks (carrier-internal wavelengths feeding the OTN layer) are
//! restored the same way; their riding sub-wavelength circuits recover
//! automatically when the trunk returns.

use simcore::SimDuration;

use photonic::alarm::{Alarm, AlarmKind, AlarmSeverity};
use photonic::FiberId;

use crate::connection::{ConnState, ConnectionId, Resources, TrunkId};
use crate::controller::{Controller, Event, WorkflowKind};

impl Controller {
    /// Sever a fiber at `span`. The physical outage starts immediately;
    /// the controller reacts when the alarms surface.
    pub fn inject_fiber_cut(&mut self, fiber: FiberId, span: usize) {
        self.journal_record(|| crate::durability::Intent::CutFiber {
            fiber: fiber.raw(),
            span: span as u32,
        });
        let now = self.now();
        let detection = self.cfg.detection;
        let alarms = self.net.cut_fiber(fiber, span, now, &detection);
        self.down_fibers.insert(fiber);
        self.trace
            .emit(now, "fault", format!("{fiber} cut at span {span}"));
        self.metrics.counter("fault.fiber_cuts").incr();
        self.noc
            .on_fault_injected(crate::noc::RootCause::FiberCut(fiber.raw()), now);

        // 1+1-protected circuits react on their own (selector switch,
        // not restoration).
        let _protected_handled = self.protection_react_to_cut(fiber);
        // Physical impact: connections and trunks riding the fiber lose
        // light *now*, regardless of when the controller notices.
        let impacted: Vec<ConnectionId> = self
            .conns
            .values()
            .filter(|c| c.state == ConnState::Active && c.path_uses_fiber(fiber))
            .map(|c| c.id)
            .collect();
        for id in &impacted {
            let c = self.conns.get_mut(id).expect("impacted conn exists");
            c.transition(ConnState::Failed);
            c.outage_start(now);
            let client = (c.from.raw(), c.id.raw());
            // Terminal OT LOS alarms surface via EMS polling.
            if let Some(Resources::Wavelength(p)) = &c.resources {
                let ot = p.ot_dst;
                self.noc.hint_ot(ot.raw(), fiber.raw());
                self.sched.schedule_after(
                    detection.ot_los,
                    Event::AlarmDelivered(Alarm {
                        at: now + detection.ot_los,
                        kind: AlarmKind::OtLos { ot },
                        severity: AlarmSeverity::Critical,
                    }),
                );
            }
            // The customer hand-off drops last (client hold-off timers).
            self.noc.hint_client(client.0, client.1, fiber.raw());
            self.sched.schedule_after(
                detection.client_port,
                Event::AlarmDelivered(Alarm {
                    at: now + detection.client_port,
                    kind: AlarmKind::ClientPortDown {
                        switch: client.0,
                        port: client.1,
                    },
                    severity: AlarmSeverity::Critical,
                }),
            );
        }
        // Trunks riding the fiber: mark down, raise ODU AIS at the OTN
        // layer, fail riding circuits (whose client ports then drop).
        let down_trunks: Vec<TrunkId> = self
            .trunks
            .iter()
            .filter(|t| t.ready && t.plan.path.contains(&fiber))
            .map(|t| t.id)
            .collect();
        for tid in &down_trunks {
            self.trunks[tid.index()].ready = false;
            self.noc.hint_trunk(tid.raw(), fiber.raw());
            self.sched.schedule_after(
                detection.odu_ais,
                Event::AlarmDelivered(Alarm {
                    at: now + detection.odu_ais,
                    kind: AlarmKind::OduAis { trunk: tid.raw() },
                    severity: AlarmSeverity::Critical,
                }),
            );
            self.fail_circuits_on_trunk(*tid, Some(fiber));
        }
        // Deliver the storm.
        for a in alarms {
            let delay = a.at.saturating_since(now);
            self.sched.schedule_after(delay, Event::AlarmDelivered(a));
        }
    }

    /// Schedule the repair crew: the fiber returns to service after
    /// `repair_time` (4–12 h for a real cut).
    pub fn schedule_repair(&mut self, fiber: FiberId, repair_time: SimDuration) {
        self.journal_record(|| crate::durability::Intent::ScheduleRepair {
            fiber: fiber.raw(),
            after_ns: repair_time.as_nanos(),
        });
        self.sched
            .schedule_after(repair_time, Event::FiberRepaired { fiber });
    }

    /// A transponder hardware fault: the laser dies. Any connection
    /// terminating on it loses light now; the EMS surfaces an equipment
    /// alarm after its polling interval, which triggers restoration on a
    /// healthy spare OT.
    pub fn inject_ot_failure(&mut self, ot: photonic::TransponderId) {
        self.journal_record(|| crate::durability::Intent::OtFailure { ot: ot.raw() });
        let now = self.now();
        self.net.transponder_mut(ot).fail();
        self.metrics.counter("fault.ot_failures").incr();
        self.noc
            .on_fault_injected(crate::noc::RootCause::OtFault(ot.raw()), now);
        self.trace
            .emit(now, "fault", format!("{ot} hardware failure"));
        // Protected circuits handle their own OTs via the APS selector.
        if self.protection_react_to_ot_failure(ot) {
            return;
        }
        let impacted: Vec<ConnectionId> = self
            .conns
            .values()
            .filter(|c| {
                c.state == ConnState::Active
                    && matches!(&c.resources,
                        Some(Resources::Wavelength(p)) if p.ot_src == ot || p.ot_dst == ot)
            })
            .map(|c| c.id)
            .collect();
        for id in impacted {
            let c = self.conns.get_mut(&id).expect("conn exists");
            c.transition(ConnState::Failed);
            c.outage_start(now);
        }
        let delay = self.cfg.detection.ot_los;
        self.sched.schedule_after(
            delay,
            Event::AlarmDelivered(Alarm {
                at: now + delay,
                kind: AlarmKind::OtFail { ot },
                severity: AlarmSeverity::Critical,
            }),
        );
    }

    pub(crate) fn on_alarm(&mut self, alarm: Alarm) {
        self.trace.emit(self.now(), "alarm", alarm.to_string());
        self.metrics.counter("fault.alarms").incr();
        self.noc_observe_alarm(&alarm);
        match alarm.kind {
            AlarmKind::FiberDown { fiber } => {
                // Root cause localized. Trigger restoration for every
                // impacted connection and trunk, once.
                self.trace.emit(
                    self.now(),
                    "fault",
                    format!("root cause localized: {fiber}"),
                );
                if self.cfg.auto_restore {
                    self.enqueue_restorations(fiber);
                }
            }
            AlarmKind::OtFail { ot } => {
                // Equipment fault localized directly to the OT: restore
                // its connection onto a spare transponder.
                if self.cfg.auto_restore {
                    let failed: Vec<ConnectionId> = self
                        .conns
                        .values()
                        .filter(|c| {
                            c.state == ConnState::Failed
                                && matches!(&c.resources,
                                    Some(Resources::Wavelength(p))
                                        if p.ot_src == ot || p.ot_dst == ot)
                        })
                        .map(|c| c.id)
                        .collect();
                    for id in failed {
                        self.enqueue_restoration(id);
                    }
                    self.pump_restoration_queue();
                }
            }
            // LOS, AIS and client-port alarms are corroborating symptoms;
            // the localizer counts them (and the NOC suppresses them
            // against the root) but acts on the FiberDown telemetry.
            AlarmKind::DegreeLos { .. }
            | AlarmKind::OtLos { .. }
            | AlarmKind::OduAis { .. }
            | AlarmKind::ClientPortDown { .. } => {}
        }
    }

    fn enqueue_restorations(&mut self, fiber: FiberId) {
        let mut failed: Vec<(u8, ConnectionId)> = self
            .conns
            .values()
            .filter(|c| c.state == ConnState::Failed && c.path_uses_fiber_or_none(fiber))
            .map(|c| (self.tenants.priority(c.customer), c.id))
            .collect();
        // Premium tenants restore first; id order within a class.
        failed.sort();
        for (_, id) in failed {
            self.enqueue_restoration(id);
        }
        // Failed trunks join the same serialized restoration discipline,
        // interleaved after connections (carrier policy: customer
        // wavelengths first).
        let trunks: Vec<TrunkId> = self
            .trunks
            .iter()
            .filter(|t| !t.ready && t.plan.path.contains(&fiber))
            .map(|t| t.id)
            .collect();
        for t in trunks {
            self.restore_trunk(t);
        }
        self.pump_restoration_queue();
    }

    /// Queue `id` for restoration (idempotent). While spans are enabled
    /// the enqueue instant is stamped so the eventual restoration root
    /// span attributes genuine EMS-serialization queue wait.
    pub(crate) fn enqueue_restoration(&mut self, id: ConnectionId) {
        if self.restoration_queue.contains(&id) {
            return;
        }
        self.restoration_queue.push_back(id);
        if self.spans.is_enabled() {
            let now = self.now();
            self.restoration_enqueued_at.entry(id).or_insert(now);
        }
    }

    /// Start queued restorations while the EMS plane has workflow slots
    /// free (`restoration_parallelism`, 1 on the paper's testbed).
    pub(crate) fn pump_restoration_queue(&mut self) {
        while self.restorations_in_flight < self.cfg.restoration_parallelism {
            if !self.start_next_restoration() {
                return;
            }
        }
    }

    /// Start at most one queued restoration; returns false when the
    /// queue yields nothing startable.
    fn start_next_restoration(&mut self) -> bool {
        while let Some(id) = self.restoration_queue.pop_front() {
            let enqueued_at = self.restoration_enqueued_at.remove(&id);
            let Some(conn) = self.conns.get(&id) else {
                continue;
            };
            if conn.state != ConnState::Failed {
                continue;
            }
            let (from, to, rate) = match conn.kind {
                crate::connection::ConnectionKind::Wavelength { rate } => {
                    (conn.from, conn.to, rate)
                }
                // Sub-wavelength circuits recover with their trunks;
                // 1+1 circuits self-heal via their selector.
                crate::connection::ConnectionKind::SubWavelength { .. }
                | crate::connection::ConnectionKind::ProtectedWavelength { .. } => continue,
            };
            let excluded: Vec<FiberId> = self.down_fibers.iter().copied().collect();
            match self.plan_wavelength(from, to, rate, &excluded) {
                Ok(new_plan) => {
                    // Swap resources: release the dead path, claim the new.
                    let old = self.conns.get_mut(&id).and_then(|c| c.resources.take());
                    if let Some(Resources::Wavelength(old_plan)) = old {
                        self.release_plan(&old_plan);
                    }
                    self.claim_plan(&new_plan);
                    let hops = new_plan.hops();
                    {
                        let c = self.conns.get_mut(&id).expect("conn exists");
                        c.resources = Some(Resources::Wavelength(new_plan));
                        c.transition(ConnState::Restoring);
                    }
                    let sample = self.wavelength_setup_sample(hops);
                    let dur = sample.total();
                    self.trace.emit(
                        self.now(),
                        "fault",
                        format!("{id} restoration started eta={dur}"),
                    );
                    {
                        let now = self.now();
                        self.noc.on_restoration_started(now);
                    }
                    if self.spans.is_enabled() {
                        // The root opens back at the enqueue instant so
                        // the serialization delay behind earlier
                        // restorations shows up as a queue-wait phase.
                        let now = self.now();
                        let start = enqueued_at.unwrap_or(now);
                        let root = self.open_workflow_span(
                            id,
                            WorkflowKind::Restore,
                            start,
                            "conn.restore",
                        );
                        self.spans.attr_u64(root, "hops", hops as u64);
                        if now > start {
                            let qw = self.spans.record(
                                start,
                                now,
                                "phase",
                                "restore.queue_wait",
                                Some(root),
                            );
                            self.spans
                                .attr_u64(qw, "queue_wait_ns", now.since(start).as_nanos());
                        }
                        self.emit_setup_spans(root, now, &sample);
                    }
                    self.restorations_in_flight += 1;
                    self.schedule_workflow(dur, id, WorkflowKind::Restore);
                    return true;
                }
                Err(e) => {
                    // No capacity: leave Failed; a later repair retries.
                    self.metrics.counter("fault.restore_blocked").incr();
                    self.trace.emit(
                        self.now(),
                        "fault",
                        format!("{id} restoration blocked: {e}"),
                    );
                }
            }
        }
        false
    }

    pub(crate) fn on_restore_done(&mut self, id: ConnectionId) {
        let now = self.now();
        self.restorations_in_flight = self.restorations_in_flight.saturating_sub(1);
        if let Some(conn) = self.conns.get_mut(&id) {
            if conn.state == ConnState::Restoring {
                conn.transition(ConnState::Active);
                conn.outage_end(now);
                let outage = conn.outage_total;
                if let Some(Resources::Wavelength(plan)) = &conn.resources {
                    let (s, d) = (plan.ot_src, plan.ot_dst);
                    self.net.transponder_mut(s).tuning_complete();
                    self.net.transponder_mut(d).tuning_complete();
                }
                self.metrics
                    .histogram("fault.outage_secs")
                    .record(outage.as_secs_f64());
                self.metrics.counter("fault.restored").incr();
                self.trace.emit(
                    now,
                    "fault",
                    format!("{id} restored, cumulative outage {outage}"),
                );
            }
        }
        self.pump_restoration_queue();
    }

    /// Restore a failed trunk over surviving fibers (immediately swaps
    /// resources; in service after a setup workflow).
    fn restore_trunk(&mut self, tid: TrunkId) {
        let t = &self.trunks[tid.index()];
        let (a, b, rate) = (t.a, t.b, t.rate);
        let excluded: Vec<FiberId> = self.down_fibers.iter().copied().collect();
        match self.plan_wavelength(a, b, rate, &excluded) {
            Ok(new_plan) => {
                let old_plan = self.trunks[tid.index()].plan.clone();
                self.release_plan(&old_plan);
                self.claim_plan(&new_plan);
                let hops = new_plan.hops();
                self.trunks[tid.index()].plan = new_plan;
                let sample = self.wavelength_setup_sample(hops);
                let dur = sample.total();
                self.trace.emit(
                    self.now(),
                    "fault",
                    format!("{tid} restoration started eta={dur}"),
                );
                if self.spans.is_enabled() {
                    let t0 = self.now();
                    let root = self.spans.open(t0, "otn", "otn.trunk_restore", None);
                    self.spans.attr_u64(root, "trunk", u64::from(tid.raw()));
                    self.emit_setup_spans(root, t0, &sample);
                    if root.is_valid() {
                        self.trunk_spans.insert(tid, root);
                    }
                }
                self.schedule_trunk_workflow(dur, tid, Event::TrunkRestored { trunk: tid });
            }
            Err(e) => {
                self.metrics.counter("fault.trunk_restore_blocked").incr();
                self.trace
                    .emit(self.now(), "fault", format!("{tid} blocked: {e}"));
            }
        }
    }

    pub(crate) fn on_trunk_restored(&mut self, tid: TrunkId) {
        let now = self.now();
        self.workflows.complete(tid.raw(), "trunk_restore");
        if let Some(root) = self.trunk_spans.remove(&tid) {
            self.spans.close(root, now);
        }
        let t = &mut self.trunks[tid.index()];
        t.ready = true;
        let (s, d) = (t.plan.ot_src, t.plan.ot_dst);
        self.net.transponder_mut(s).tuning_complete();
        self.net.transponder_mut(d).tuning_complete();
        self.trace
            .emit(now, "fault", format!("{tid} back in service"));
        // Sub-wavelength circuits riding only ready trunks recover.
        let recovered: Vec<ConnectionId> = self
            .conns
            .values()
            .filter(|c| {
                c.state == ConnState::Failed
                    && match &c.resources {
                        Some(Resources::SubWavelength(r)) => {
                            r.trunks.iter().all(|t| self.trunks[t.index()].ready)
                        }
                        _ => false,
                    }
            })
            .map(|c| c.id)
            .collect();
        for id in recovered {
            let c = self.conns.get_mut(&id).expect("conn exists");
            c.transition(ConnState::Active);
            c.outage_end(now);
            self.metrics
                .histogram("fault.outage_secs")
                .record(c.outage_total.as_secs_f64());
            self.trace
                .emit(now, "fault", format!("{id} recovered with its trunk"));
        }
    }

    /// Fail every sub-wavelength circuit riding `tid`. When the trunk
    /// went down because of a fiber cut (`cause`), the circuits' client
    /// ports raise the tail of the alarm cascade.
    pub(crate) fn fail_circuits_on_trunk(&mut self, tid: TrunkId, cause: Option<FiberId>) {
        let now = self.now();
        let detection = self.cfg.detection;
        let impacted: Vec<(ConnectionId, u32)> = self
            .conns
            .values()
            .filter(|c| {
                c.state == ConnState::Active
                    && matches!(&c.resources,
                        Some(Resources::SubWavelength(r)) if r.trunks.contains(&tid))
            })
            .map(|c| {
                let sw = match &c.resources {
                    Some(Resources::SubWavelength(r)) => {
                        r.xcs.first().map(|(s, _)| *s as u32).unwrap_or(0)
                    }
                    _ => 0,
                };
                (c.id, sw)
            })
            .collect();
        for (id, sw) in impacted {
            let c = self.conns.get_mut(&id).expect("conn exists");
            c.transition(ConnState::Failed);
            c.outage_start(now);
            if let Some(fiber) = cause {
                self.noc.hint_client(sw, id.raw(), fiber.raw());
                self.sched.schedule_after(
                    detection.client_port,
                    Event::AlarmDelivered(Alarm {
                        at: now + detection.client_port,
                        kind: AlarmKind::ClientPortDown {
                            switch: sw,
                            port: id.raw(),
                        },
                        severity: AlarmSeverity::Critical,
                    }),
                );
            }
        }
    }

    pub(crate) fn on_fiber_repaired(&mut self, fiber: FiberId) {
        let now = self.now();
        self.net.fiber_mut(fiber).restore();
        self.down_fibers.remove(&fiber);
        self.trace.emit(now, "fault", format!("{fiber} repaired"));
        self.metrics.counter("fault.repairs").incr();
        // Hard-failed 1+1 circuits resume on whichever leg is whole.
        self.protection_react_to_repair();
        // Connections still Failed (restoration was blocked, or
        // auto_restore is off) can now come back. With auto-restore they
        // re-enter the queue; in manual mode ("today's reality") the
        // repair itself ends the outage on the original path, whose
        // configuration was never released.
        let still_failed: Vec<ConnectionId> = self
            .conns
            .values()
            .filter(|c| c.state == ConnState::Failed)
            .map(|c| c.id)
            .collect();
        if self.cfg.auto_restore {
            for id in still_failed {
                self.enqueue_restoration(id);
            }
            self.pump_restoration_queue();
            if self.cfg.auto_revert {
                // §2.2 reversion: restored circuits sitting on detours
                // migrate back toward the repaired primary, hitlessly.
                let (moved, km) = self.regroom_all();
                if moved > 0 {
                    self.trace.emit(
                        now,
                        "maint",
                        format!("reversion: {moved} circuits migrating, {km:.0} km saved"),
                    );
                    self.metrics
                        .counter("maintenance.reversions")
                        .add(moved as u64);
                }
            }
        } else {
            for id in still_failed {
                let c = self.conns.get_mut(&id).expect("conn exists");
                let on_repaired_path = c.path_uses_fiber(fiber);
                if on_repaired_path {
                    c.transition(ConnState::Active);
                    c.outage_end(now);
                    self.metrics
                        .histogram("fault.outage_secs")
                        .record(c.outage_total.as_secs_f64());
                    self.trace
                        .emit(now, "fault", format!("{id} back after manual repair"));
                }
            }
        }
    }
}

impl crate::connection::Connection {
    /// Does this connection's active wavelength path cross `fiber`?
    pub fn path_uses_fiber(&self, fiber: FiberId) -> bool {
        match &self.resources {
            Some(Resources::Wavelength(p)) => p.path.contains(&fiber),
            _ => false,
        }
    }

    /// Like [`Self::path_uses_fiber`], but also true when resources were
    /// already swapped away (a failed connection being re-queued).
    pub(crate) fn path_uses_fiber_or_none(&self, fiber: FiberId) -> bool {
        match &self.resources {
            Some(Resources::Wavelength(p)) => p.path.contains(&fiber),
            Some(Resources::SubWavelength(_)) => false,
            // Protected circuits self-heal; never queue them.
            Some(Resources::Protected { .. }) => false,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use crate::tenant::CustomerId;
    use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};
    use simcore::{DataRate, SimTime};

    fn quiet_cfg() -> ControllerConfig {
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        }
    }

    fn up(ctl: &mut Controller, ids: &photonic::TestbedIds) -> (CustomerId, ConnectionId) {
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Active);
        (csp, id)
    }

    #[test]
    fn cut_detect_localize_restore() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet_cfg());
        let (_, id) = up(&mut ctl, &ids);
        let t_cut = ctl.now();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Failed);
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Active);
        // Restored over the 2-hop detour.
        let plan = conn.wavelength_plan().unwrap();
        assert_eq!(plan.hops(), 2);
        assert!(!plan.path.contains(&ids.f_i_iv));
        // Outage ≈ detection (0.5 s) + one 2-hop setup (65.67 s).
        let outage = conn.outage_total.as_secs_f64();
        assert!((outage - 66.17).abs() < 0.5, "outage={outage}");
        assert!(ctl.now().since(t_cut) < simcore::SimDuration::from_mins(3));
    }

    #[test]
    fn multi_connection_restoration_is_serialized() {
        let (net, ids) = PhotonicNetwork::testbed(8);
        let mut ctl = Controller::new(net, quiet_cfg());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let mut conns = Vec::new();
        for _ in 0..3 {
            conns.push(
                ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                    .unwrap(),
            );
        }
        ctl.run_until_idle();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.run_until_idle();
        let mut outages: Vec<f64> = conns
            .iter()
            .map(|c| ctl.connection(*c).unwrap().outage_total.as_secs_f64())
            .collect();
        outages.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Sequential EMS: k-th restoration waits for k-1 predecessors.
        assert!(outages[1] > outages[0] + 30.0, "{outages:?}");
        assert!(outages[2] > outages[1] + 30.0, "{outages:?}");
        // All restored within "a few minutes".
        assert!(outages[2] < 300.0, "{outages:?}");
        assert_eq!(ctl.metrics.counter("fault.restored").get(), 3);
    }

    #[test]
    fn restoration_parallelism_shortens_worst_outage() {
        let run = |parallelism: usize| -> f64 {
            let (net, ids) = PhotonicNetwork::testbed(12);
            let mut ctl = Controller::new(
                net,
                ControllerConfig {
                    restoration_parallelism: parallelism,
                    ..quiet_cfg()
                },
            );
            let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
            let conns: Vec<_> = (0..4)
                .map(|_| {
                    ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                        .unwrap()
                })
                .collect();
            ctl.run_until_idle();
            ctl.inject_fiber_cut(ids.f_i_iv, 0);
            ctl.run_until_idle();
            conns
                .iter()
                .map(|c| ctl.connection(*c).unwrap().outage_total.as_secs_f64())
                .fold(0.0f64, f64::max)
        };
        let serial = run(1);
        let parallel = run(4);
        // 4 serialized setups vs 4 concurrent ones.
        assert!(serial > 3.5 * 65.0, "serial={serial}");
        assert!(
            parallel < serial / 2.5,
            "parallel={parallel} vs serial={serial}"
        );
    }

    #[test]
    fn manual_repair_mode_waits_hours() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                auto_restore: false,
                ..quiet_cfg()
            },
        );
        let (_, id) = up(&mut ctl, &ids);
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.schedule_repair(ids.f_i_iv, simcore::SimDuration::from_hours(6));
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Active);
        let outage = conn.outage_total.as_secs_f64();
        assert!((outage - 6.0 * 3600.0).abs() < 1.0, "outage={outage}");
    }

    #[test]
    fn restoration_blocked_until_repair() {
        // Two-node network with a single fiber: no detour exists.
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        let f = net.link(a, b, 50.0).unwrap();
        net.add_transponders(a, LineRate::Gbps10, 2).unwrap();
        net.add_transponders(b, LineRate::Gbps10, 2).unwrap();
        let mut ctl = Controller::new(net, quiet_cfg());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let id = ctl.request_wavelength(csp, a, b, LineRate::Gbps10).unwrap();
        ctl.run_until_idle();
        ctl.inject_fiber_cut(f, 0);
        ctl.schedule_repair(f, simcore::SimDuration::from_hours(1));
        ctl.run_until(SimTime::from_secs(1800));
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Failed);
        assert!(ctl.metrics.counter("fault.restore_blocked").get() >= 1);
        ctl.run_until_idle();
        // After repair, auto-restore re-provisions over the repaired fiber.
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Active);
    }

    #[test]
    fn alarm_storm_is_counted_and_correlated_once() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet_cfg());
        let _ = up(&mut ctl, &ids);
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.run_until_idle();
        // ≥ 4 alarms: FiberDown + 2× DegreeLos + terminal OtLos.
        assert!(ctl.metrics.counter("fault.alarms").get() >= 4);
        assert_eq!(ctl.metrics.counter("fault.fiber_cuts").get(), 1);
        assert_eq!(ctl.metrics.counter("fault.restored").get(), 1);
        assert_eq!(ctl.trace.count_containing("root cause localized"), 1);
    }

    #[test]
    fn premium_tenants_restore_first() {
        let (net, ids) = PhotonicNetwork::testbed(8);
        let mut ctl = Controller::new(net, quiet_cfg());
        let economy = ctl.tenants.register("economy", DataRate::from_gbps(100));
        let premium = ctl
            .tenants
            .register_with_priority("premium", DataRate::from_gbps(100), 0);
        // Economy orders first (lower conn id), premium second.
        let e = ctl
            .request_wavelength(economy, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        let p = ctl
            .request_wavelength(premium, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.run_until_idle();
        let pe = ctl.connection(e).unwrap().outage_total;
        let pp = ctl.connection(p).unwrap().outage_total;
        assert!(
            pp < pe,
            "premium ({pp}) must be restored before economy ({pe})"
        );
    }

    #[test]
    fn ot_failure_restores_on_spare() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet_cfg());
        let (_, id) = up(&mut ctl, &ids);
        let dead_ot = ctl
            .connection(id)
            .unwrap()
            .wavelength_plan()
            .unwrap()
            .ot_src;
        ctl.inject_ot_failure(dead_ot);
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Failed);
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Active);
        let new_plan = conn.wavelength_plan().unwrap();
        assert_ne!(new_plan.ot_src, dead_ot, "must use a spare OT");
        // Failed hardware stays out of the pool until repaired.
        assert_eq!(
            ctl.net.transponder(dead_ot).state,
            photonic::TransponderState::Failed
        );
        // Outage ≈ EMS polling (2.5 s) + one setup.
        let outage = conn.outage_total.as_secs_f64();
        assert!((60.0..75.0).contains(&outage), "outage={outage}");
        assert_eq!(ctl.metrics.counter("fault.ot_failures").get(), 1);
    }

    #[test]
    fn idle_ot_failure_is_harmless() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet_cfg());
        let (_, id) = up(&mut ctl, &ids);
        let spare = ctl.net.idle_ots_at(ids.i, LineRate::Gbps10)[0];
        ctl.inject_ot_failure(spare);
        ctl.run_until_idle();
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Active);
        assert_eq!(
            ctl.connection(id).unwrap().outage_total,
            simcore::SimDuration::ZERO
        );
    }

    #[test]
    fn transients_counted_without_staged_ramp() {
        let (net, ids) = PhotonicNetwork::testbed(6);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                staged_power_ramp: false,
                ..quiet_cfg()
            },
        );
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        // First λ on the fiber: no survivors, no disturbance.
        ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        assert_eq!(ctl.metrics.counter("transient.events").get(), 0);
        // Second λ: one survivor (worst case 3 dB > 0.5 dB tolerance).
        ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        assert_eq!(ctl.metrics.counter("transient.events").get(), 1);
        assert_eq!(ctl.metrics.counter("transient.disturbed_channels").get(), 1);
        ctl.run_until_idle();
    }

    #[test]
    fn staged_ramp_suppresses_transients() {
        let (net, ids) = PhotonicNetwork::testbed(6);
        let mut ctl = Controller::new(net, quiet_cfg()); // default: staged
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        for _ in 0..3 {
            ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                .unwrap();
        }
        ctl.run_until_idle();
        assert_eq!(ctl.metrics.counter("transient.events").get(), 0);
    }

    #[test]
    fn unaffected_connections_keep_running() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet_cfg());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let direct = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        let other = ctl
            .request_wavelength(csp, ids.ii, ids.iii, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.run_until_idle();
        assert_eq!(ctl.connection(other).unwrap().state, ConnState::Active);
        assert_eq!(
            ctl.connection(other).unwrap().outage_total,
            simcore::SimDuration::ZERO
        );
        assert_eq!(ctl.connection(direct).unwrap().state, ConnState::Active);
    }
}
