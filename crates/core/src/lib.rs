//! # griphon — the GRIPhoN controller
//!
//! A from-scratch implementation of the paper's primary contribution:
//! the **G**lobally **R**econfigurable **I**ntelligent **Pho**tonic
//! **N**etwork control plane that turns a statically provisioned optical
//! backbone into a bandwidth-on-demand service for inter-data-center
//! communication.
//!
//! ## What the controller does (paper §2.2)
//!
//! - tracks available network resources in its inventory database
//!   ([`inventory`]);
//! - talks to the network elements (FXC, OTN switch EMS, ROADM EMS)
//!   through a vendor-EMS latency model, so every operation costs what
//!   the paper's testbed measured ([`controller`]);
//! - routes and wavelength-assigns new connections ([`rwa`]);
//! - offers the BoD service at rates from 1 G (OTN sub-wavelength,
//!   electronic, seconds to set up) to 10–40 G (full wavelength, 60–70 s
//!   to set up — Table 2), including composite bundles like
//!   2×1G + 10G = 12G ([`bod`], [`otn_service`]);
//! - detects, localizes and automatically restores failures ([`fault`]);
//! - performs near-hitless bridge-and-roll for planned maintenance and
//!   re-grooming ([`maintenance`]);
//! - actively probes shared paths and estimates available bandwidth, the
//!   feedback signal for estimation-aware BoD ([`measure`]);
//! - isolates tenants behind quotas ([`tenant`]) and shows each customer
//!   only their own connections ([`gui`]);
//! - plans spare resources with Erlang-style tools ([`planning`]);
//! - encodes the paper's service/layer figures as checkable models
//!   ([`layers`]).
//!
//! ## Quick start
//!
//! ```
//! use griphon::controller::{Controller, ControllerConfig};
//! use photonic::{LineRate, PhotonicNetwork};
//! use simcore::DataRate;
//!
//! // The paper's Fig. 4 testbed with 4 transponders per node.
//! let (net, ids) = PhotonicNetwork::testbed(4);
//! let mut ctl = Controller::new(net, ControllerConfig::default());
//! let csp = ctl.tenants.register("acme-cloud", DataRate::from_gbps(100));
//!
//! // Order a 10 G wavelength between data centers at nodes I and IV…
//! let conn = ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10).unwrap();
//! // …and run the event loop until the EMS workflows complete (~62 s).
//! ctl.run_until_idle();
//! assert!(ctl.connection(conn).unwrap().state.carrying_traffic());
//! ```

#![deny(missing_docs)]

pub mod bod;
pub mod calendar;
pub mod connection;
pub mod controller;
pub mod durability;
pub mod fault;
pub mod gui;
pub mod inventory;
pub mod layers;
pub mod maintenance;
pub mod measure;
pub mod noc;
pub mod otn_service;
pub mod planning;
pub mod protection;
pub mod rwa;
pub mod sla;
pub mod slo;
pub mod tenant;

pub use bod::{Bundle, BundleId, Decomposition};
pub use calendar::{CalendarError, Reservation, ReservationId, ReservationState};
pub use connection::{ConnState, Connection, ConnectionId, ConnectionKind, TrunkId};
pub use controller::{Controller, ControllerConfig, RequestError, Trunk};
pub use durability::{
    recover, FailoverConfig, FailoverReport, HaPair, Intent, RecoveryError, RecoveryOutcome,
    Snapshot, SnapshotMeta, SnapshotStore, StandbyController, Wal, WalConfig, WalError, WalRecord,
};
pub use inventory::InventorySnapshot;
pub use layers::{Layer, LayerStack, ServiceCategory};
pub use measure::{
    AbEstimator, AbSample, CrossTraffic, MeasureOutcome, ProbeConfig, ProbePath, Prober,
};
pub use noc::{Noc, RootCause};
pub use rwa::{RegionMap, RouteCacheStats, RwaConfig, RwaError, WavelengthPlan};
pub use sla::{nines, nines_value, SlaReport, MAX_NINES};
pub use slo::{BurnAlert, SloEngine, SloSpec, SloStatus, TelemetryRollup};
pub use tenant::{CustomerId, TenantRegistry};
