//! Network resource planning.
//!
//! §4: *"In order to support rapid connection provisioning and faster
//! restorations, the carrier must plan ahead, where and when to deploy
//! the spare resources (especially OTs) … they need to forecast demand
//! and carefully manage the pool of GRIPhoN resources … in this network
//! the number of users is smaller and the cost of a line is far greater,
//! making accurate planning far more critical"* (than POTS trunk
//! engineering).
//!
//! Three planning tools, deliberately in the POTS tradition the paper
//! invokes but at wavelength granularity:
//!
//! - [`erlang_b`] — blocking probability of a pool of `n` transponders
//!   offered `a` erlangs (recursive form, numerically stable).
//! - [`servers_for_blocking`] — smallest pool meeting a blocking target.
//! - [`SparePlanner`] — distribute a budget of spare OTs over nodes,
//!   greedily assigning each next spare where it reduces weighted
//!   blocking the most.
//! - [`forecast_linear`] — least-squares trend extrapolation of a demand
//!   history, for the "double or triple in the next two to four years"
//!   projections the paper cites from Forrester.

/// Erlang-B blocking probability: `a` erlangs offered to `n` servers.
///
/// Uses the stable recurrence `B(0) = 1`,
/// `B(k) = a·B(k−1) / (k + a·B(k−1))`.
///
/// ```
/// let b = griphon::planning::erlang_b(3.0, 5);
/// assert!((b - 0.1101).abs() < 5e-4); // classic table value
/// ```
pub fn erlang_b(a: f64, n: usize) -> f64 {
    assert!(a >= 0.0, "offered load must be non-negative");
    if a == 0.0 {
        return 0.0;
    }
    let mut b = 1.0;
    for k in 1..=n {
        b = a * b / (k as f64 + a * b);
    }
    b
}

/// Smallest server count with blocking ≤ `target` for `a` erlangs.
/// Returns `None` if even `max` servers are not enough.
pub fn servers_for_blocking(a: f64, target: f64, max: usize) -> Option<usize> {
    (0..=max).find(|n| erlang_b(a, *n) <= target)
}

/// Demand at one node: offered erlangs of OT usage and a weight (how
/// much the carrier cares — e.g. revenue at the PoP).
#[derive(Debug, Clone, Copy)]
pub struct NodeDemand {
    /// Offered load (mean simultaneous OTs requested).
    pub erlangs: f64,
    /// Relative importance.
    pub weight: f64,
}

/// Greedy spare-transponder placement.
#[derive(Debug, Clone)]
pub struct SparePlanner {
    /// Per-node forecast demand.
    pub demands: Vec<NodeDemand>,
}

impl SparePlanner {
    /// Place `budget` spare OTs on top of `base` per-node pools,
    /// assigning each next spare to the node where it most reduces
    /// `weight × blocking`. Returns the per-node totals.
    pub fn place(&self, base: &[usize], budget: usize) -> Vec<usize> {
        assert_eq!(
            base.len(),
            self.demands.len(),
            "pool/demand length mismatch"
        );
        let mut pools = base.to_vec();
        for _ in 0..budget {
            let mut best: Option<(usize, f64)> = None;
            for (i, d) in self.demands.iter().enumerate() {
                let now = erlang_b(d.erlangs, pools[i]) * d.weight;
                let then = erlang_b(d.erlangs, pools[i] + 1) * d.weight;
                let gain = now - then;
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((i, gain));
                }
            }
            let (i, _) = best.expect("non-empty demand set");
            pools[i] += 1;
        }
        pools
    }

    /// Weighted total blocking of a placement.
    pub fn weighted_blocking(&self, pools: &[usize]) -> f64 {
        self.demands
            .iter()
            .zip(pools)
            .map(|(d, n)| d.weight * erlang_b(d.erlangs, *n))
            .sum()
    }
}

/// Least-squares linear trend: fit `y = a + b·t` to the history (t = 0,
/// 1, …) and extrapolate `horizon` further steps. Clamped at zero.
pub fn forecast_linear(history: &[f64], horizon: usize) -> Vec<f64> {
    assert!(history.len() >= 2, "need at least two observations");
    let n = history.len() as f64;
    let t_mean = (n - 1.0) / 2.0;
    let y_mean = history.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, y) in history.iter().enumerate() {
        num += (t as f64 - t_mean) * (y - y_mean);
        den += (t as f64 - t_mean).powi(2);
    }
    let b = if den == 0.0 { 0.0 } else { num / den };
    let a = y_mean - b * t_mean;
    (history.len()..history.len() + horizon)
        .map(|t| (a + b * t as f64).max(0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_known_values() {
        // Classic table values: a=3 erlangs, n=5 → B ≈ 0.1101.
        assert!((erlang_b(3.0, 5) - 0.1101).abs() < 5e-4);
        // a=10, n=10 → B ≈ 0.2146.
        assert!((erlang_b(10.0, 10) - 0.2146).abs() < 5e-4);
        // Degenerate cases.
        assert_eq!(erlang_b(0.0, 5), 0.0);
        assert_eq!(erlang_b(4.0, 0), 1.0);
    }

    #[test]
    fn erlang_b_monotone_in_servers() {
        for n in 0..20 {
            assert!(erlang_b(5.0, n + 1) < erlang_b(5.0, n));
        }
    }

    #[test]
    fn servers_for_blocking_finds_minimum() {
        let n = servers_for_blocking(3.0, 0.01, 100).unwrap();
        assert!(erlang_b(3.0, n) <= 0.01);
        assert!(erlang_b(3.0, n - 1) > 0.01);
        // Unreachable target.
        assert_eq!(servers_for_blocking(50.0, 1e-9, 3), None);
    }

    #[test]
    fn greedy_placement_prefers_loaded_weighted_nodes() {
        let planner = SparePlanner {
            demands: vec![
                NodeDemand {
                    erlangs: 8.0,
                    weight: 1.0,
                },
                NodeDemand {
                    erlangs: 1.0,
                    weight: 1.0,
                },
            ],
        };
        let pools = planner.place(&[2, 2], 6);
        assert_eq!(pools.iter().sum::<usize>(), 10);
        assert!(pools[0] > pools[1], "hot node gets the spares: {pools:?}");
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_case() {
        let planner = SparePlanner {
            demands: vec![
                NodeDemand {
                    erlangs: 4.0,
                    weight: 2.0,
                },
                NodeDemand {
                    erlangs: 2.0,
                    weight: 1.0,
                },
            ],
        };
        let budget = 5;
        let greedy = planner.place(&[1, 1], budget);
        let g_cost = planner.weighted_blocking(&greedy);
        // Exhaustive split of the budget.
        let mut best = f64::INFINITY;
        for k in 0..=budget {
            let pools = vec![1 + k, 1 + budget - k];
            best = best.min(planner.weighted_blocking(&pools));
        }
        assert!(
            (g_cost - best).abs() < 1e-9,
            "greedy {g_cost} vs optimal {best}"
        );
    }

    #[test]
    fn forecast_extends_trend() {
        // Paper motivation: demand doubling over the horizon.
        let history = [10.0, 12.0, 14.0, 16.0];
        let f = forecast_linear(&history, 3);
        assert_eq!(f.len(), 3);
        assert!((f[0] - 18.0).abs() < 1e-9);
        assert!((f[2] - 22.0).abs() < 1e-9);
    }

    #[test]
    fn forecast_clamps_at_zero_and_handles_flat() {
        let f = forecast_linear(&[10.0, 5.0, 0.0], 4);
        assert!(f.iter().all(|y| *y >= 0.0));
        let flat = forecast_linear(&[7.0, 7.0, 7.0], 2);
        assert!((flat[0] - 7.0).abs() < 1e-9);
        assert!((flat[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "two observations")]
    fn forecast_needs_history() {
        forecast_linear(&[1.0], 1);
    }
}
