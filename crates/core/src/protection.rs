//! 1+1 dedicated protection.
//!
//! §1 item 3: today a full-wavelength customer who cannot tolerate long
//! outages "buy\\[s\\] expensive 1+1 protection where if a primary connection
//! fails, traffic is re-routed to a backup". This module implements that
//! service class so experiment E2 can *measure* the comparison GRIPhoN is
//! making instead of quoting it:
//!
//! - both legs (link-disjoint by construction) are claimed for the
//!   connection's whole life — the "expensive" part: 2× transponders and
//!   wavelength·links per circuit;
//! - the head-end bridges traffic onto both legs, so a failure on the
//!   active leg only needs the tail-end selector to flip: a fixed ~50 ms
//!   switchover, no signalling, no EMS workflow;
//! - a standby-leg failure is hitless (degraded redundancy, trace only);
//! - if *both* legs are down, the circuit is hard-failed until a repair
//!   returns either leg, at which point service resumes immediately.
//!
//! The switchover constant lives in [`ProtectionTiming`].

use simcore::SimDuration;

use photonic::{FiberId, LineRate, RoadmId};

use crate::connection::{ConnState, Connection, ConnectionId, ConnectionKind, Resources};
use crate::controller::{Controller, RequestError, WorkflowKind};
use crate::rwa::{self, WavelengthPlan};
use crate::tenant::CustomerId;

/// Timing of the 1+1 selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtectionTiming {
    /// Tail-end selector switch time after loss of the active leg
    /// (SONET-class APS budget: 50 ms).
    pub switchover: SimDuration,
}

impl Default for ProtectionTiming {
    fn default() -> Self {
        ProtectionTiming {
            switchover: SimDuration::from_millis(50),
        }
    }
}

impl Controller {
    /// Order a 1+1-protected wavelength. Claims *two* disjoint plans;
    /// fails with [`RequestError::Rwa`] if no disjoint pair with
    /// resources exists. Activation takes one setup workflow (both legs
    /// are provisioned in parallel; total time is the max, dominated by
    /// the longer leg's equalization).
    pub fn request_protected_wavelength(
        &mut self,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        rate: LineRate,
    ) -> Result<ConnectionId, RequestError> {
        self.journal_record(|| crate::durability::Intent::ProtectedWavelength {
            customer: customer.raw(),
            from: from.raw(),
            to: to.raw(),
            rate: crate::durability::wal::encode_rate(rate),
        });
        self.tenants.admit(customer, rate.rate())?;
        let result = self.plan_protected_pair(from, to, rate);
        let (working, protect) = match result {
            Ok(pair) => pair,
            Err(e) => {
                self.tenants.release(customer, rate.rate());
                return Err(e);
            }
        };
        let id = self.fresh_conn_id();
        let mut conn = Connection::new(
            id,
            customer,
            from,
            to,
            ConnectionKind::ProtectedWavelength { rate },
            self.now(),
        );
        let longer = working.hops().max(protect.hops());
        self.claim_plan(&working);
        self.claim_plan(&protect);
        conn.resources = Some(Resources::Protected {
            working,
            protect,
            on_protect: false,
        });
        self.conns.insert(id, conn);
        let sample = self.wavelength_setup_sample(longer);
        let dur = sample.total();
        self.trace.emit(
            self.now(),
            "conn",
            format!(
                "{id} 1+1 setup started {}→{} eta={dur}",
                self.net.name(from),
                self.net.name(to)
            ),
        );
        let t0 = self.now();
        let root = self.open_workflow_span(id, WorkflowKind::Setup, t0, "conn.setup");
        if root.is_valid() {
            self.spans.attr_u64(root, "hops", longer as u64);
            self.spans.attr_u64(root, "protected", 1);
            self.emit_setup_spans(root, t0, &sample);
        }
        self.schedule_workflow(dur, id, WorkflowKind::Setup);
        Ok(id)
    }

    /// Find a disjoint working/protect pair with full resource checks on
    /// both legs. The protect plan is computed *after* a hypothetical
    /// claim of the working plan would... — in practice the two plans
    /// must not share fibers, wavelength-on-fiber, OTs or regens; we
    /// achieve this by planning the working leg, then planning the
    /// protect leg with the working fibers excluded and verifying the
    /// endpoint OT pools are deep enough for both.
    fn plan_protected_pair(
        &mut self,
        from: RoadmId,
        to: RoadmId,
        rate: LineRate,
    ) -> Result<(WavelengthPlan, WavelengthPlan), RequestError> {
        let working = self.plan_wavelength(from, to, rate, &[])?;
        let mut protect = self.plan_wavelength(from, to, rate, &working.path)?;
        // Distinct endpoint OTs for the second leg.
        let src_pool = self.net.idle_ots_at(from, rate);
        let dst_pool = self.net.idle_ots_at(to, rate);
        let src2 = src_pool.iter().find(|t| **t != working.ot_src);
        let dst2 = dst_pool.iter().find(|t| **t != working.ot_dst);
        match (src2, dst2) {
            (Some(s), Some(d)) => {
                protect.ot_src = *s;
                protect.ot_dst = *d;
            }
            _ => {
                return Err(RequestError::Rwa(rwa::RwaError::Blocked { candidates: 2 }));
            }
        }
        // Distinct regens (pools are per-node; the planner may have
        // picked overlapping ones if both legs regen at a shared node —
        // disjoint paths share no intermediate fibers but can share
        // nodes).
        for r in &mut protect.regens {
            if working.regens.contains(r) {
                let node = self.net.regen(*r).location;
                let pool = self.net.free_regens_at(node, rate);
                match pool
                    .into_iter()
                    .find(|cand| !working.regens.contains(cand) && cand != r)
                {
                    Some(alt) => *r = alt,
                    None => {
                        return Err(RequestError::Rwa(rwa::RwaError::Blocked { candidates: 2 }))
                    }
                }
            }
        }
        Ok((working, protect))
    }

    /// Is every fiber of a plan's path in service?
    pub(crate) fn leg_up(&self, plan: &WavelengthPlan) -> bool {
        plan.path.iter().all(|f| self.net.fiber(*f).is_up())
    }

    /// React to a fiber cut for protected connections: called from the
    /// cut injector. Returns the ids it handled so the generic path
    /// skips them.
    pub(crate) fn protection_react_to_cut(&mut self, fiber: FiberId) -> Vec<ConnectionId> {
        let now = self.now();
        let timing = ProtectionTiming::default();
        let mut handled = Vec::new();
        let ids: Vec<ConnectionId> = self
            .conns
            .values()
            .filter(|c| {
                c.state == ConnState::Active
                    && matches!(c.resources, Some(Resources::Protected { .. }))
            })
            .map(|c| c.id)
            .collect();
        for id in ids {
            let (active_hit, standby_up) = {
                let c = self.conns.get(&id).expect("conn exists");
                let Some(Resources::Protected {
                    working,
                    protect,
                    on_protect,
                }) = &c.resources
                else {
                    unreachable!("filtered above")
                };
                let (active, standby) = if *on_protect {
                    (protect, working)
                } else {
                    (working, protect)
                };
                let active_hit = active.path.contains(&fiber);
                let standby_hit = standby.path.contains(&fiber);
                if !active_hit && !standby_hit {
                    continue;
                }
                if !active_hit && standby_hit {
                    // Hitless: redundancy lost, service unaffected.
                    self.trace.emit(
                        now,
                        "prot",
                        format!("{id} standby leg hit — redundancy degraded"),
                    );
                    self.metrics.counter("protection.degraded").incr();
                    handled.push(id);
                    continue;
                }
                (
                    active_hit,
                    self.leg_up(standby) && !standby.path.contains(&fiber),
                )
            };
            if !active_hit {
                continue;
            }
            handled.push(id);
            let c = self.conns.get_mut(&id).expect("conn exists");
            c.transition(ConnState::Failed);
            c.outage_start(now);
            if standby_up {
                self.trace
                    .emit(now, "prot", format!("{id} active leg hit — APS switchover"));
                self.schedule_workflow(timing.switchover, id, WorkflowKind::ProtectionSwitch);
            } else {
                self.trace.emit(
                    now,
                    "prot",
                    format!("{id} BOTH legs down — hard failure, awaiting repair"),
                );
                self.metrics.counter("protection.dual_failures").incr();
            }
        }
        handled
    }

    pub(crate) fn on_protection_switch(&mut self, id: ConnectionId) {
        let now = self.now();
        // The standby may itself have died while the selector was
        // switching (a dual failure racing the 50 ms window).
        let target_up = {
            let Some(conn) = self.conns.get(&id) else {
                return;
            };
            if conn.state != ConnState::Failed {
                return; // torn down while switching
            }
            let Some(Resources::Protected {
                working,
                protect,
                on_protect,
            }) = &conn.resources
            else {
                return;
            };
            let target = if *on_protect { working } else { protect };
            self.leg_up(target)
        };
        if !target_up {
            self.metrics.counter("protection.dual_failures").incr();
            self.trace.emit(
                now,
                "prot",
                format!("{id} switch target also down — hard failure"),
            );
            return;
        }
        let conn = self.conns.get_mut(&id).expect("checked above");
        let Some(Resources::Protected { on_protect, .. }) = &mut conn.resources else {
            return;
        };
        *on_protect = !*on_protect;
        conn.transition(ConnState::Active);
        conn.outage_end(now);
        let outage = conn.outage_total;
        self.metrics
            .histogram("protection.switch_ms")
            .record(outage.as_secs_f64() * 1e3);
        self.trace
            .emit(now, "prot", format!("{id} switched legs, outage {outage}"));
    }

    /// An OT hardware failure on a protected circuit: active-leg OT
    /// failure triggers the selector; standby-leg OT failure degrades
    /// redundancy only. Returns true if the failure belonged to a
    /// protected circuit.
    pub(crate) fn protection_react_to_ot_failure(&mut self, ot: photonic::TransponderId) -> bool {
        let now = self.now();
        let timing = ProtectionTiming::default();
        let hit: Option<(ConnectionId, bool)> = self.conns.values().find_map(|c| {
            if c.state != ConnState::Active {
                return None;
            }
            let Some(Resources::Protected {
                working,
                protect,
                on_protect,
            }) = &c.resources
            else {
                return None;
            };
            let (active, standby) = if *on_protect {
                (protect, working)
            } else {
                (working, protect)
            };
            if active.ot_src == ot || active.ot_dst == ot {
                Some((c.id, true))
            } else if standby.ot_src == ot || standby.ot_dst == ot {
                Some((c.id, false))
            } else {
                None
            }
        });
        let Some((id, on_active)) = hit else {
            return false;
        };
        if on_active {
            let c = self.conns.get_mut(&id).expect("conn exists");
            c.transition(ConnState::Failed);
            c.outage_start(now);
            self.trace
                .emit(now, "prot", format!("{id} active-leg OT died — APS"));
            self.schedule_workflow(timing.switchover, id, WorkflowKind::ProtectionSwitch);
        } else {
            self.metrics.counter("protection.degraded").incr();
            self.trace
                .emit(now, "prot", format!("{id} standby-leg OT died — degraded"));
        }
        true
    }

    /// A repair may resurrect hard-failed protected circuits: resume on
    /// whichever leg is whole. Called from the repair handler.
    pub(crate) fn protection_react_to_repair(&mut self) {
        let now = self.now();
        let ids: Vec<ConnectionId> = self
            .conns
            .values()
            .filter(|c| {
                c.state == ConnState::Failed
                    && matches!(c.resources, Some(Resources::Protected { .. }))
            })
            .map(|c| c.id)
            .collect();
        for id in ids {
            let usable: Option<bool> = {
                let c = self.conns.get(&id).expect("conn exists");
                let Some(Resources::Protected {
                    working, protect, ..
                }) = &c.resources
                else {
                    continue;
                };
                if self.leg_up(working) {
                    Some(false) // resume on working
                } else if self.leg_up(protect) {
                    Some(true) // resume on protect
                } else {
                    None
                }
            };
            if let Some(on_protect_now) = usable {
                let c = self.conns.get_mut(&id).expect("conn exists");
                if let Some(Resources::Protected { on_protect, .. }) = &mut c.resources {
                    *on_protect = on_protect_now;
                }
                c.transition(ConnState::Active);
                c.outage_end(now);
                self.trace
                    .emit(now, "prot", format!("{id} resumed after repair"));
            }
        }
    }

    /// Both legs' wavelength·link and transponder footprint — what "1+1
    /// is expensive" means, measurable for the cost comparison.
    pub fn protection_footprint(&self, id: ConnectionId) -> Option<(usize, usize)> {
        let c = self.conns.get(&id)?;
        match &c.resources {
            Some(Resources::Protected {
                working, protect, ..
            }) => Some((
                working.hops() + protect.hops(),
                4 + 2 * (working.regens.len() + protect.regens.len()),
            )),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use photonic::{EmsProfile, EqualizationModel, PhotonicNetwork, Wavelength};
    use simcore::DataRate;

    fn quiet() -> ControllerConfig {
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        }
    }

    fn protected_testbed() -> (Controller, photonic::TestbedIds, ConnectionId) {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("bank", DataRate::from_gbps(100));
        let id = ctl
            .request_protected_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Active);
        (ctl, ids, id)
    }

    #[test]
    fn claims_two_disjoint_legs() {
        let (ctl, ids, id) = protected_testbed();
        let c = ctl.connection(id).unwrap();
        let Some(Resources::Protected {
            working,
            protect,
            on_protect,
        }) = &c.resources
        else {
            panic!("wrong resources")
        };
        assert!(!on_protect);
        assert!(working.path.iter().all(|f| !protect.path.contains(f)));
        assert_ne!(working.ot_src, protect.ot_src);
        assert_ne!(working.ot_dst, protect.ot_dst);
        // Both paths physically configured: λ0 busy on both routes.
        assert!(!ctl.net.lambda_free_on_fiber(ids.f_i_iv, Wavelength(0)));
        assert_eq!(ctl.net.idle_ots_at(ids.i, LineRate::Gbps10).len(), 2);
        // Footprint: 1-hop + 2-hop legs, 4 OTs.
        assert_eq!(ctl.protection_footprint(id), Some((3, 4)));
    }

    #[test]
    fn switchover_is_fifty_ms() {
        let (mut ctl, ids, id) = protected_testbed();
        ctl.inject_fiber_cut(ids.f_i_iv, 0); // the working leg
        ctl.run_until_idle();
        let c = ctl.connection(id).unwrap();
        assert_eq!(c.state, ConnState::Active);
        let Some(Resources::Protected { on_protect, .. }) = &c.resources else {
            panic!()
        };
        assert!(on_protect, "traffic must be on the protect leg");
        let outage = c.outage_total.as_secs_f64();
        assert!((outage - 0.05).abs() < 1e-6, "outage={outage}s");
        // No λ-restoration workflow ran for it.
        assert_eq!(ctl.metrics.counter("fault.restored").get(), 0);
    }

    #[test]
    fn standby_hit_is_hitless() {
        let (mut ctl, _ids, id) = protected_testbed();
        // The protect leg is the 2-hop I–III–IV detour; cut one of its
        // fibers.
        let protect_fiber = {
            let c = ctl.connection(id).unwrap();
            let Some(Resources::Protected { protect, .. }) = &c.resources else {
                panic!()
            };
            protect.path[0]
        };
        ctl.inject_fiber_cut(protect_fiber, 0);
        ctl.run_until_idle();
        let c = ctl.connection(id).unwrap();
        assert_eq!(c.state, ConnState::Active);
        assert_eq!(c.outage_total, SimDuration::ZERO);
        assert_eq!(ctl.metrics.counter("protection.degraded").get(), 1);
    }

    #[test]
    fn dual_failure_waits_for_repair() {
        let (mut ctl, ids, id) = protected_testbed();
        let protect_fiber = {
            let c = ctl.connection(id).unwrap();
            let Some(Resources::Protected { protect, .. }) = &c.resources else {
                panic!()
            };
            protect.path[0]
        };
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.inject_fiber_cut(protect_fiber, 0);
        ctl.schedule_repair(ids.f_i_iv, SimDuration::from_hours(2));
        ctl.run_until_idle();
        let c = ctl.connection(id).unwrap();
        assert_eq!(c.state, ConnState::Active, "resumed after repair");
        let outage = c.outage_total.as_secs_f64();
        // Dominated by the 2 h repair (the switchover happened first but
        // the second cut re-failed it… depending on order the total is
        // ≈2 h minus the first 50 ms window).
        assert!(outage > 3_000.0, "outage={outage}");
        assert!(ctl.metrics.counter("protection.dual_failures").get() >= 1);
    }

    #[test]
    fn active_leg_ot_failure_switches_in_50ms() {
        let (mut ctl, _ids, id) = protected_testbed();
        let active_ot = {
            let c = ctl.connection(id).unwrap();
            let Some(Resources::Protected { working, .. }) = &c.resources else {
                panic!()
            };
            working.ot_src
        };
        ctl.inject_ot_failure(active_ot);
        ctl.run_until_idle();
        let c = ctl.connection(id).unwrap();
        assert_eq!(c.state, ConnState::Active);
        let Some(Resources::Protected { on_protect, .. }) = &c.resources else {
            panic!()
        };
        assert!(on_protect);
        assert!((c.outage_total.as_secs_f64() - 0.05).abs() < 1e-6);
    }

    #[test]
    fn standby_leg_ot_failure_is_hitless() {
        let (mut ctl, _ids, id) = protected_testbed();
        let standby_ot = {
            let c = ctl.connection(id).unwrap();
            let Some(Resources::Protected { protect, .. }) = &c.resources else {
                panic!()
            };
            protect.ot_dst
        };
        ctl.inject_ot_failure(standby_ot);
        ctl.run_until_idle();
        let c = ctl.connection(id).unwrap();
        assert_eq!(c.state, ConnState::Active);
        assert_eq!(c.outage_total, SimDuration::ZERO);
        assert_eq!(ctl.metrics.counter("protection.degraded").get(), 1);
    }

    #[test]
    fn teardown_releases_both_legs() {
        let (mut ctl, ids, id) = protected_testbed();
        ctl.request_teardown(id).unwrap();
        ctl.run_until_idle();
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Released);
        assert_eq!(ctl.net.idle_ots_at(ids.i, LineRate::Gbps10).len(), 4);
        assert_eq!(ctl.net.idle_ots_at(ids.iv, LineRate::Gbps10).len(), 4);
        assert!(ctl.net.lambda_free_on_fiber(ids.f_i_iv, Wavelength(0)));
    }

    #[test]
    fn no_disjoint_pair_refused_cleanly() {
        // Two nodes, single fiber: no 1+1 possible.
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        net.link(a, b, 50.0).unwrap();
        net.add_transponders(a, LineRate::Gbps10, 4).unwrap();
        net.add_transponders(b, LineRate::Gbps10, 4).unwrap();
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("bank", DataRate::from_gbps(100));
        let err = ctl
            .request_protected_wavelength(csp, a, b, LineRate::Gbps10)
            .unwrap_err();
        assert!(matches!(err, RequestError::Rwa(_)));
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
        assert_eq!(ctl.net.idle_ots_at(a, LineRate::Gbps10).len(), 4);
    }

    #[test]
    fn unprotected_neighbors_still_restore_normally() {
        let (net, ids) = PhotonicNetwork::testbed(6);
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("bank", DataRate::from_gbps(100));
        let prot = ctl
            .request_protected_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        let plain = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.run_until_idle();
        let p = ctl.connection(prot).unwrap();
        let u = ctl.connection(plain).unwrap();
        assert_eq!(p.state, ConnState::Active);
        assert_eq!(u.state, ConnState::Active);
        // The 1+1 circuit's outage is milliseconds; the restored one's a
        // minute-plus — the paper's cost/speed trade, measured.
        assert!(p.outage_total < SimDuration::from_millis(100));
        assert!(u.outage_total > SimDuration::from_secs(60));
    }
}
