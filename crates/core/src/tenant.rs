//! Multi-customer isolation.
//!
//! §4 (*Network resource planning*): "The carrier should also ensure
//! isolation of services across different CSPs." GRIPhoN shares one
//! physical plant among cloud providers; what keeps one tenant's burst
//! from starving another is admission control against per-tenant
//! bandwidth quotas, enforced *before* any resource is claimed.

use serde::{Deserialize, Serialize};
use simcore::{define_id, DataRate};
use std::collections::BTreeMap;

define_id!(
    /// Identifier of a cloud-service-provider customer.
    CustomerId,
    "csp"
);

/// One tenant's contract.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tenant {
    /// This tenant's id.
    pub id: CustomerId,
    /// Display name.
    pub name: String,
    /// Maximum aggregate provisioned bandwidth.
    pub quota: DataRate,
    /// Currently provisioned bandwidth.
    pub in_use: DataRate,
    /// Restoration priority: lower restores first (premium = 0,
    /// default = 100). §4: the carrier manages a shared pool across
    /// customers; when a cut hits many circuits at once, this decides
    /// who waits.
    pub priority: u8,
}

/// Why admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// Unknown customer id.
    NoSuchTenant(CustomerId),
    /// The request would exceed the tenant's quota.
    QuotaExceeded {
        /// Who.
        customer: CustomerId,
        /// What was requested.
        requested: DataRate,
        /// Quota headroom remaining.
        available: DataRate,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::NoSuchTenant(c) => write!(f, "no such tenant {c}"),
            AdmissionError::QuotaExceeded {
                customer,
                requested,
                available,
            } => write!(f, "{customer}: {requested} exceeds headroom {available}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Restoration priority assigned when none is given (lower = restored
/// first).
pub const DEFAULT_PRIORITY: u8 = 100;

/// The tenant table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TenantRegistry {
    tenants: BTreeMap<CustomerId, Tenant>,
    next: u32,
}

impl TenantRegistry {
    /// Empty registry.
    pub fn new() -> TenantRegistry {
        Self::default()
    }

    /// Onboard a tenant with a quota at default priority.
    pub fn register(&mut self, name: impl Into<String>, quota: DataRate) -> CustomerId {
        self.register_with_priority(name, quota, DEFAULT_PRIORITY)
    }

    /// Onboard a tenant with an explicit restoration priority
    /// (lower = restored first).
    pub fn register_with_priority(
        &mut self,
        name: impl Into<String>,
        quota: DataRate,
        priority: u8,
    ) -> CustomerId {
        let id = CustomerId::new(self.next);
        self.next += 1;
        self.tenants.insert(
            id,
            Tenant {
                id,
                name: name.into(),
                quota,
                in_use: DataRate::ZERO,
                priority,
            },
        );
        id
    }

    /// A tenant's restoration priority (default 100 for unknown ids).
    pub fn priority(&self, id: CustomerId) -> u8 {
        self.tenants.get(&id).map(|t| t.priority).unwrap_or(100)
    }

    /// Read a tenant.
    pub fn get(&self, id: CustomerId) -> Option<&Tenant> {
        self.tenants.get(&id)
    }

    /// All tenants.
    pub fn iter(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.values()
    }

    /// Check and commit a bandwidth claim atomically.
    pub fn admit(&mut self, id: CustomerId, rate: DataRate) -> Result<(), AdmissionError> {
        let t = self
            .tenants
            .get_mut(&id)
            .ok_or(AdmissionError::NoSuchTenant(id))?;
        let available = t.quota.saturating_sub(t.in_use);
        if rate > available {
            return Err(AdmissionError::QuotaExceeded {
                customer: id,
                requested: rate,
                available,
            });
        }
        t.in_use += rate;
        Ok(())
    }

    /// Return bandwidth to the tenant's quota (on teardown or blocked
    /// provisioning).
    ///
    /// # Panics
    /// If the tenant is unknown or more is released than was in use —
    /// both are accounting bugs.
    pub fn release(&mut self, id: CustomerId, rate: DataRate) {
        let t = self
            .tenants
            .get_mut(&id)
            .unwrap_or_else(|| panic!("release for unknown tenant {id}"));
        assert!(
            rate <= t.in_use,
            "{id}: releasing {rate} with only {} in use",
            t.in_use
        );
        t.in_use = t.in_use.saturating_sub(rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_enforced() {
        let mut reg = TenantRegistry::new();
        let a = reg.register("acme-cloud", DataRate::from_gbps(20));
        reg.admit(a, DataRate::from_gbps(10)).unwrap();
        reg.admit(a, DataRate::from_gbps(10)).unwrap();
        let err = reg.admit(a, DataRate::from_gbps(1)).unwrap_err();
        assert!(matches!(err, AdmissionError::QuotaExceeded { .. }));
        reg.release(a, DataRate::from_gbps(10));
        reg.admit(a, DataRate::from_gbps(5)).unwrap();
        assert_eq!(reg.get(a).unwrap().in_use, DataRate::from_gbps(15));
    }

    #[test]
    fn tenants_are_isolated() {
        let mut reg = TenantRegistry::new();
        let a = reg.register("a", DataRate::from_gbps(10));
        let b = reg.register("b", DataRate::from_gbps(10));
        reg.admit(a, DataRate::from_gbps(10)).unwrap();
        // A's exhaustion does not affect B.
        reg.admit(b, DataRate::from_gbps(10)).unwrap();
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn priorities_register_and_default() {
        let mut reg = TenantRegistry::new();
        let normal = reg.register("n", DataRate::from_gbps(1));
        let premium = reg.register_with_priority("p", DataRate::from_gbps(1), 0);
        assert_eq!(reg.priority(normal), 100);
        assert_eq!(reg.priority(premium), 0);
        assert_eq!(reg.priority(CustomerId::new(99)), 100);
    }

    #[test]
    fn unknown_tenant_rejected() {
        let mut reg = TenantRegistry::new();
        assert_eq!(
            reg.admit(CustomerId::new(9), DataRate::from_gbps(1)),
            Err(AdmissionError::NoSuchTenant(CustomerId::new(9)))
        );
    }

    #[test]
    #[should_panic(expected = "in use")]
    fn over_release_panics() {
        let mut reg = TenantRegistry::new();
        let a = reg.register("a", DataRate::from_gbps(10));
        reg.release(a, DataRate::from_gbps(1));
    }
}
