//! Declarative SLOs, error budgets and multi-window burn-rate alerting,
//! plus the fleet-level telemetry rollup (DESIGN.md §14).
//!
//! The paper's headline artifacts are *service-level* numbers — Table 2
//! setup latencies, restoration speed, the availability gap between
//! manual repair and automated restoration. This module turns those
//! targets into machine-checked objectives:
//!
//! 1. **[`SloSpec`]** declares an objective ("99.99 % of minutes
//!    available", "99 % of setups under 70 s") as a good/bad event
//!    stream scored against a target fraction.
//! 2. **[`SloEngine`]** ingests time-ordered observations per
//!    `(spec, scope)` — scopes are tenants, regions, or whatever the
//!    caller labels — and evaluates error budgets and burn rates over
//!    sliding sim-time windows.
//! 3. **Burn-rate alerts** follow the multi-window pattern: a *page*
//!    needs both the 5-minute and 1-hour windows burning ≥ 14.4× (the
//!    rate that exhausts a 30-day budget in ~2 days), a *ticket* needs
//!    the 6-hour and 3-day windows ≥ 1×. The double window keeps a
//!    brief spike from paging while still catching slow leaks. Alerts
//!    are handed to [`crate::noc::Noc::on_slo_alert`] for root-cause
//!    attribution.
//! 4. **[`TelemetryRollup`]** merges per-cell [`FamilyRegistry`]
//!    snapshots into one fleet view, tagging each cell's families with
//!    its region label — the aggregation layer between
//!    `parallel_cells_with` shards and the exposition text.
//!
//! Everything here is pure sim-time bookkeeping: no wall clock, no
//! randomness, `BTreeMap` storage — evaluation is a deterministic
//! function of the observation stream.

use std::collections::BTreeMap;

use simcore::{FamilyRegistry, SimDuration, SimTime};

/// Fast multi-window pair (page severity): 5 minutes and 1 hour.
pub const FAST_WINDOWS: (SimDuration, SimDuration) =
    (SimDuration::from_mins(5), SimDuration::from_hours(1));

/// Slow multi-window pair (ticket severity): 6 hours and 3 days.
pub const SLOW_WINDOWS: (SimDuration, SimDuration) =
    (SimDuration::from_hours(6), SimDuration::from_hours(72));

/// Burn rate both fast windows must exceed to page: consumes a 30-day
/// budget in ~2 days.
pub const FAST_BURN_THRESHOLD: f64 = 14.4;

/// Burn rate both slow windows must exceed to file a ticket: exactly
/// budget-neutral, i.e. any sustained overspend.
pub const SLOW_BURN_THRESHOLD: f64 = 1.0;

/// One declarative service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Objective name ("availability", "setup_latency_p99", …) — the
    /// `slo` label everywhere downstream.
    pub name: &'static str,
    /// Target good fraction in `(0, 1)`, e.g. `0.9999`.
    pub objective: f64,
    /// For latency-flavoured SLOs: the threshold in seconds an
    /// observation must stay under to count as good. Ignored by
    /// [`SloEngine::observe`] (binary feeds); used by
    /// [`SloEngine::observe_latency`].
    pub threshold_secs: f64,
}

/// Evaluated state of one `(spec, scope)` stream at an instant.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The objective's name.
    pub slo: &'static str,
    /// The stream's scope label (tenant, region, …).
    pub scope: String,
    /// The target good fraction.
    pub objective: f64,
    /// Observations ingested so far.
    pub events: u64,
    /// Observations that were bad.
    pub bad: u64,
    /// Fraction of the error budget still unspent over the whole
    /// stream: 1 when clean, 0 when exactly spent, negative when
    /// overspent. 1 for an empty stream.
    pub budget_remaining: f64,
    /// Burn rates over (5m, 1h, 6h, 3d) windows ending now.
    pub burn: [f64; 4],
}

/// One rising-edge burn-rate alert found by [`SloEngine::scan_alerts`].
#[derive(Debug, Clone, PartialEq)]
pub struct BurnAlert {
    /// The objective's name.
    pub slo: &'static str,
    /// The stream's scope label.
    pub scope: String,
    /// First evaluation instant at which the condition held.
    pub at: SimTime,
    /// `"page"` (fast windows) or `"ticket"` (slow windows).
    pub severity: &'static str,
    /// Burn rate over the short window of the triggering pair at `at`.
    pub short_burn: f64,
    /// Burn rate over the long window of the triggering pair at `at`.
    pub long_burn: f64,
}

/// The SLO engine: declarative specs + per-scope observation streams,
/// evaluated into error budgets and multi-window burn-rate alerts.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    /// Time-ordered good/bad events per (spec index, scope).
    events: BTreeMap<(usize, String), Vec<(SimTime, bool)>>,
}

impl SloEngine {
    /// An engine scoring against `specs`.
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        for s in &specs {
            assert!(
                s.objective > 0.0 && s.objective < 1.0,
                "objective for {} must be in (0, 1)",
                s.name
            );
        }
        SloEngine {
            specs,
            events: BTreeMap::new(),
        }
    }

    /// The declared objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    fn spec_index(&self, name: &str) -> usize {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown SLO {name:?}"))
    }

    /// Ingest one binary observation. Observations per stream must
    /// arrive in non-decreasing time order (they come from a
    /// deterministic simulation, so they do).
    pub fn observe(&mut self, slo: &str, scope: &str, at: SimTime, good: bool) {
        let idx = self.spec_index(slo);
        let stream = self.events.entry((idx, scope.to_string())).or_default();
        if let Some(&(last, _)) = stream.last() {
            assert!(at >= last, "observations for {slo}/{scope} out of order");
        }
        stream.push((at, good));
    }

    /// Ingest one latency observation, scored against the spec's
    /// `threshold_secs`.
    pub fn observe_latency(&mut self, slo: &str, scope: &str, at: SimTime, latency: SimDuration) {
        let idx = self.spec_index(slo);
        let good = latency.as_secs_f64() <= self.specs[idx].threshold_secs;
        self.observe(slo, scope, at, good);
    }

    /// `(total, bad)` event counts in the half-open window
    /// `(now − w, now]` of one stream.
    fn window_counts(stream: &[(SimTime, bool)], now: SimTime, w: SimDuration) -> (u64, u64) {
        let lo_ns = now.as_nanos().saturating_sub(w.as_nanos());
        let lo = stream.partition_point(|&(t, _)| t.as_nanos() <= lo_ns);
        let hi = stream.partition_point(|&(t, _)| t <= now);
        let total = (hi - lo) as u64;
        let bad = stream[lo..hi].iter().filter(|&&(_, good)| !good).count() as u64;
        (total, bad)
    }

    /// Burn rate of `(slo, scope)` over the window ending at `now`:
    /// observed bad fraction divided by the budgeted bad fraction
    /// `1 − objective`. 1.0 means the budget is being spent exactly at
    /// the sustainable rate; 0 for an empty window.
    pub fn burn_rate(&self, slo: &str, scope: &str, now: SimTime, w: SimDuration) -> f64 {
        let idx = self.spec_index(slo);
        let Some(stream) = self.events.get(&(idx, scope.to_string())) else {
            return 0.0;
        };
        let (total, bad) = Self::window_counts(stream, now, w);
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / (1.0 - self.specs[idx].objective)
    }

    fn severity_at(
        &self,
        idx: usize,
        stream: &[(SimTime, bool)],
        now: SimTime,
    ) -> Option<(&'static str, f64, f64)> {
        let budget = 1.0 - self.specs[idx].objective;
        let burn = |w: SimDuration| {
            let (total, bad) = Self::window_counts(stream, now, w);
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / budget
            }
        };
        let (fast_s, fast_l) = (burn(FAST_WINDOWS.0), burn(FAST_WINDOWS.1));
        if fast_s >= FAST_BURN_THRESHOLD && fast_l >= FAST_BURN_THRESHOLD {
            return Some(("page", fast_s, fast_l));
        }
        let (slow_s, slow_l) = (burn(SLOW_WINDOWS.0), burn(SLOW_WINDOWS.1));
        if slow_s >= SLOW_BURN_THRESHOLD && slow_l >= SLOW_BURN_THRESHOLD {
            return Some(("ticket", slow_s, slow_l));
        }
        None
    }

    /// Sweep every stream over evaluation instants `step, 2·step, …`
    /// up to and including `until`, returning rising-edge alerts: one
    /// [`BurnAlert`] per transition into a (new) severity, none while a
    /// condition merely persists. Streams are scanned in deterministic
    /// `(spec, scope)` order; within a stream, alerts are time-ordered.
    pub fn scan_alerts(&self, step: SimDuration, until: SimTime) -> Vec<BurnAlert> {
        assert!(!step.is_zero(), "scan step must be positive");
        let mut alerts = Vec::new();
        for (&(idx, ref scope), stream) in &self.events {
            let mut prev: Option<&'static str> = None;
            let mut t = SimTime::ZERO + step;
            while t <= until {
                let cur = self.severity_at(idx, stream, t);
                match cur {
                    Some((sev, short_burn, long_burn)) if prev != Some(sev) => {
                        alerts.push(BurnAlert {
                            slo: self.specs[idx].name,
                            scope: scope.clone(),
                            at: t,
                            severity: sev,
                            short_burn,
                            long_burn,
                        });
                        prev = Some(sev);
                    }
                    Some(_) => {}
                    None => prev = None,
                }
                t += step;
            }
        }
        alerts
    }

    /// Evaluate every stream at `now` into status rows, in
    /// deterministic `(spec, scope)` order.
    pub fn evaluate(&self, now: SimTime) -> Vec<SloStatus> {
        let windows = [
            FAST_WINDOWS.0,
            FAST_WINDOWS.1,
            SLOW_WINDOWS.0,
            SLOW_WINDOWS.1,
        ];
        self.events
            .iter()
            .map(|(&(idx, ref scope), stream)| {
                let spec = &self.specs[idx];
                let events = stream.len() as u64;
                let bad = stream.iter().filter(|&&(_, good)| !good).count() as u64;
                let budget = (1.0 - spec.objective) * events as f64;
                let budget_remaining = if events == 0 {
                    1.0
                } else {
                    1.0 - bad as f64 / budget
                };
                let burn = windows.map(|w| {
                    let (total, b) = Self::window_counts(stream, now, w);
                    if total == 0 {
                        0.0
                    } else {
                        (b as f64 / total as f64) / (1.0 - spec.objective)
                    }
                });
                SloStatus {
                    slo: spec.name,
                    scope: scope.clone(),
                    objective: spec.objective,
                    events,
                    bad,
                    budget_remaining,
                    burn,
                }
            })
            .collect()
    }

    /// Publish the evaluation at `now` into `reg` as labeled gauges
    /// (`slo_objective`, `slo_events`, `slo_bad_events`,
    /// `slo_budget_remaining`, and `slo_burn_rate` per window).
    pub fn export(&self, now: SimTime, reg: &mut FamilyRegistry) {
        for st in self.evaluate(now) {
            let base = [("scope", st.scope.as_str()), ("slo", st.slo)];
            reg.gauge("slo_objective", &base).set(st.objective);
            reg.gauge("slo_events", &base).set(st.events as f64);
            reg.gauge("slo_bad_events", &base).set(st.bad as f64);
            reg.gauge("slo_budget_remaining", &base)
                .set(st.budget_remaining);
            for (w, rate) in ["5m", "1h", "6h", "3d"].iter().zip(st.burn) {
                reg.gauge(
                    "slo_burn_rate",
                    &[("scope", st.scope.as_str()), ("slo", st.slo), ("window", w)],
                )
                .set(rate);
            }
        }
    }
}

/// Fleet-level telemetry aggregation: per-cell registries merge in under
/// a `region` label, fleet-wide registries merge in unlabeled, and the
/// combined view exposes as one Prometheus-style text page.
#[derive(Debug, Clone, Default)]
pub struct TelemetryRollup {
    fleet: FamilyRegistry,
    regions: Vec<String>,
}

impl TelemetryRollup {
    /// An empty rollup.
    pub fn new() -> TelemetryRollup {
        TelemetryRollup::default()
    }

    /// Merge one cell's registry under `region="…"`. Counters add,
    /// gauges overwrite (max-tracking retained), histograms merge —
    /// including their exemplar reservoirs, so a fleet histogram still
    /// links back to the traces of every region.
    pub fn absorb(&mut self, region: &str, cell: &FamilyRegistry) {
        self.fleet.merge_labeled(cell, "region", region);
        if !self.regions.iter().any(|r| r == region) {
            self.regions.push(region.to_string());
        }
    }

    /// Merge a fleet-scoped registry (SLA gauges, SLO evaluation) with
    /// its labels unchanged.
    pub fn absorb_global(&mut self, reg: &FamilyRegistry) {
        self.fleet.merge_from(reg);
    }

    /// The combined fleet registry.
    pub fn fleet(&self) -> &FamilyRegistry {
        &self.fleet
    }

    /// Regions absorbed so far, in first-seen order.
    pub fn regions(&self) -> &[String] {
        &self.regions
    }

    /// The fleet view as Prometheus-style exposition text.
    pub fn expose(&self) -> String {
        self.fleet.expose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<SloSpec> {
        vec![
            SloSpec {
                name: "availability",
                objective: 0.9999,
                threshold_secs: 0.0,
            },
            SloSpec {
                name: "setup_latency",
                objective: 0.99,
                threshold_secs: 70.0,
            },
        ]
    }

    #[test]
    fn window_math_is_half_open_and_exact() {
        let mut eng = SloEngine::new(specs());
        // Bad minute at t=300 s exactly, good elsewhere.
        for m in 1..=10u64 {
            let t = SimTime::from_secs(60 * m);
            eng.observe("availability", "acme", t, m != 5);
        }
        // Window (300, 600]: five events, none bad (t=300 excluded).
        let now = SimTime::from_secs(600);
        assert_eq!(
            eng.burn_rate("availability", "acme", now, SimDuration::from_mins(5)),
            0.0
        );
        // Window (240, 540]: five events, one bad → burn 0.2/1e-4 = 2000.
        let now = SimTime::from_secs(540);
        let burn = eng.burn_rate("availability", "acme", now, SimDuration::from_mins(5));
        assert!((burn - 2000.0).abs() < 1e-9, "{burn}");
        // Empty window and unknown scope burn 0.
        assert_eq!(
            eng.burn_rate(
                "availability",
                "acme",
                SimTime::from_secs(100_000),
                SimDuration::from_mins(5)
            ),
            0.0
        );
        assert_eq!(
            eng.burn_rate("availability", "nobody", now, SimDuration::from_mins(5)),
            0.0
        );
    }

    #[test]
    fn latency_observations_score_against_threshold() {
        let mut eng = SloEngine::new(specs());
        let t = SimTime::from_secs(10);
        eng.observe_latency("setup_latency", "r0", t, SimDuration::from_secs(62));
        eng.observe_latency("setup_latency", "r0", t, SimDuration::from_secs(71));
        let st = &eng.evaluate(t)[0];
        assert_eq!((st.events, st.bad), (2, 1));
    }

    #[test]
    fn page_needs_both_fast_windows() {
        let mut eng = SloEngine::new(specs());
        // One bad sample in an otherwise empty stream: the 5 m window
        // burns hard, but so does the 1 h window (same lone event), so
        // this *does* page — then a long good tail recovers it.
        for m in 1..=120u64 {
            let t = SimTime::from_secs(60 * m);
            eng.observe("availability", "acme", t, !(30..=35).contains(&m));
        }
        let alerts = eng.scan_alerts(SimDuration::from_mins(1), SimTime::from_secs(60 * 120));
        let pages: Vec<_> = alerts.iter().filter(|a| a.severity == "page").collect();
        assert_eq!(pages.len(), 1, "rising edge only: {alerts:?}");
        assert_eq!(pages[0].at, SimTime::from_secs(60 * 30));
        assert!(pages[0].short_burn >= FAST_BURN_THRESHOLD);
        assert!(pages[0].long_burn >= FAST_BURN_THRESHOLD);
        // After the outage the fast windows drain and the alert clears;
        // a second identical outage would page again (rising edge).
        let mut eng2 = eng.clone();
        for m in 121..=240u64 {
            let t = SimTime::from_secs(60 * m);
            eng2.observe("availability", "acme", t, !(200..=205).contains(&m));
        }
        let alerts2 = eng2.scan_alerts(SimDuration::from_mins(1), SimTime::from_secs(60 * 240));
        let pages2: Vec<_> = alerts2.iter().filter(|a| a.severity == "page").collect();
        assert_eq!(pages2.len(), 2);
    }

    #[test]
    fn slow_leak_tickets_but_does_not_page() {
        let mut eng = SloEngine::new(specs());
        // 2 % of setups slow, sustained for two days: burn 2 over a 1 %
        // budget — ticket territory, far below the 14.4 page threshold.
        for i in 0..2880u64 {
            let t = SimTime::from_secs(60 * i);
            eng.observe("setup_latency", "fleet", t, i % 50 != 0);
        }
        let alerts = eng.scan_alerts(SimDuration::from_mins(30), SimTime::from_secs(60 * 2880));
        assert!(alerts.iter().all(|a| a.severity == "ticket"), "{alerts:?}");
        assert!(!alerts.is_empty());
    }

    #[test]
    fn evaluate_and_export_cover_budgets() {
        let mut eng = SloEngine::new(specs());
        for i in 0..10_000u64 {
            eng.observe("availability", "acme", SimTime::from_secs(i), i != 0);
        }
        let now = SimTime::from_secs(9_999);
        let st = &eng.evaluate(now)[0];
        assert_eq!(st.events, 10_000);
        assert_eq!(st.bad, 1);
        // Budget: 1e-4 × 10_000 = 1 bad event allowed → exactly spent.
        assert!(st.budget_remaining.abs() < 1e-9, "{}", st.budget_remaining);
        let mut reg = FamilyRegistry::new();
        eng.export(now, &mut reg);
        let exp = reg.expose();
        assert!(
            exp.contains("slo_budget_remaining{scope=\"acme\",slo=\"availability\"}"),
            "{exp}"
        );
        assert!(
            exp.contains("slo_burn_rate{scope=\"acme\",slo=\"availability\",window=\"3d\"}"),
            "{exp}"
        );
    }

    #[test]
    fn rollup_merge_matches_single_registry() {
        let mut cell_a = FamilyRegistry::new();
        cell_a.counter("setup_total", &[]).add(4);
        cell_a.histogram("setup_secs", &[]).record(62.0);
        let mut cell_b = FamilyRegistry::new();
        cell_b.counter("setup_total", &[]).add(2);
        cell_b.histogram("setup_secs", &[]).record(70.0);
        let mut roll = TelemetryRollup::new();
        roll.absorb("0", &cell_a);
        roll.absorb("1", &cell_b);
        let mut global = FamilyRegistry::new();
        global
            .gauge("sla_availability", &[("customer", "acme")])
            .set(0.9999);
        roll.absorb_global(&global);
        assert_eq!(roll.regions(), ["0".to_string(), "1".to_string()]);
        let exp = roll.expose();
        assert!(exp.contains("setup_total{region=\"0\"} 4"), "{exp}");
        assert!(exp.contains("setup_total{region=\"1\"} 2"), "{exp}");
        assert!(
            exp.contains("sla_availability{customer=\"acme\"} 0.9999"),
            "{exp}"
        );
        assert_eq!(roll.fleet().counter_family_total("setup_total"), 6);
    }

    #[test]
    #[should_panic(expected = "unknown SLO")]
    fn unknown_spec_panics() {
        let mut eng = SloEngine::new(specs());
        eng.observe("nope", "x", SimTime::ZERO, true);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_observations_panic() {
        let mut eng = SloEngine::new(specs());
        eng.observe("availability", "x", SimTime::from_secs(10), true);
        eng.observe("availability", "x", SimTime::from_secs(5), true);
    }
}
