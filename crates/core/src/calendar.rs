//! Advance reservations — calendared bandwidth on demand.
//!
//! The paper's motivating workload is *scheduled*: nightly backups and
//! periodic replication (§1). A CSP that knows its 02:00 backup window
//! shouldn't have to poll; it books the window, and the controller
//! provisions the bundle with enough lead time that the full rate is in
//! service when the window opens (wavelength setup is ~70 s, so the
//! default lead is two minutes — itself a nice illustration of why
//! minute-scale provisioning changes the service model: with today's
//! weeks-scale provisioning an "advance reservation" *is* the product).
//!
//! Admission control is calendar-aware: overlapping reservations on the
//! same node pair must fit under that pair's booking capacity, checked
//! at booking time — so a confirmed reservation cannot be refused later
//! for calendar reasons (it can still fail at activation if the *plant*
//! lost resources meanwhile, e.g. to failures; that surfaces as
//! [`ReservationState::ActivationFailed`]).

use simcore::{define_id, DataRate, SimDuration, SimTime};

use photonic::RoadmId;

use crate::bod::Bundle;
use crate::controller::{Controller, Event};
use crate::tenant::CustomerId;

define_id!(
    /// Identifier of an advance reservation.
    ReservationId,
    "resv"
);

/// Lifecycle of a reservation.
#[derive(Debug, Clone, PartialEq)]
pub enum ReservationState {
    /// Confirmed, waiting for the window.
    Booked,
    /// Bundle provisioned (or provisioning) for the window.
    Active(Bundle),
    /// Window over, bundle released.
    Completed,
    /// The plant could not deliver at activation time.
    ActivationFailed(String),
    /// Cancelled before the window.
    Cancelled,
}

/// One advance booking.
#[derive(Debug, Clone)]
pub struct Reservation {
    /// This reservation's id.
    pub id: ReservationId,
    /// The booking customer.
    pub customer: CustomerId,
    /// A-end node.
    pub from: RoadmId,
    /// Z-end node.
    pub to: RoadmId,
    /// Booked aggregate rate.
    pub rate: DataRate,
    /// Service window (bandwidth in service from `start` to `end`).
    pub start: SimTime,
    /// End of the window.
    pub end: SimTime,
    /// Current state.
    pub state: ReservationState,
}

/// Why a booking was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalendarError {
    /// `end` is not after `start`, or `start` is in the past.
    BadWindow,
    /// Overlapping bookings on this pair would exceed its capacity.
    OverBooked {
        /// Capacity available over the requested window.
        available: DataRate,
    },
}

impl std::fmt::Display for CalendarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalendarError::BadWindow => write!(f, "invalid window"),
            CalendarError::OverBooked { available } => {
                write!(f, "over-booked; {available} available")
            }
        }
    }
}

impl std::error::Error for CalendarError {}

/// Lead time before the window at which provisioning starts.
pub const ACTIVATION_LEAD: SimDuration = SimDuration::from_secs(120);

impl Controller {
    /// Cap concurrent bookings between a node pair (defaults to 40 G per
    /// pair when unset).
    pub fn set_booking_capacity(&mut self, a: RoadmId, b: RoadmId, cap: DataRate) {
        self.journal_record(|| crate::durability::Intent::SetBookingCapacity {
            a: a.raw(),
            b: b.raw(),
            cap_bps: cap.bps(),
        });
        let key = if a <= b { (a, b) } else { (b, a) };
        self.booking_caps.insert(key, cap);
    }

    fn booking_capacity(&self, a: RoadmId, b: RoadmId) -> DataRate {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.booking_caps
            .get(&key)
            .copied()
            .unwrap_or(DataRate::from_gbps(40))
    }

    /// Book `rate` between `from` and `to` over `[start, end)`.
    pub fn reserve_bandwidth(
        &mut self,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        rate: DataRate,
        start: SimTime,
        end: SimTime,
    ) -> Result<ReservationId, CalendarError> {
        self.journal_record(|| crate::durability::Intent::Reserve {
            customer: customer.raw(),
            from: from.raw(),
            to: to.raw(),
            rate_bps: rate.bps(),
            start_ns: start.as_nanos(),
            end_ns: end.as_nanos(),
        });
        if end <= start || start < self.now() {
            return Err(CalendarError::BadWindow);
        }
        // Peak overlapping commitment on this pair during the window.
        let cap = self.booking_capacity(from, to);
        let key = |a: RoadmId, b: RoadmId| if a <= b { (a, b) } else { (b, a) };
        let this_key = key(from, to);
        let committed: DataRate = self
            .reservations
            .iter()
            .filter(|r| {
                matches!(
                    r.state,
                    ReservationState::Booked | ReservationState::Active(_)
                ) && key(r.from, r.to) == this_key
                    && r.start < end
                    && start < r.end
            })
            .map(|r| r.rate)
            .sum();
        let available = cap.saturating_sub(committed);
        if rate > available {
            return Err(CalendarError::OverBooked { available });
        }
        let id = ReservationId::from_index(self.reservations.len());
        self.reservations.push(Reservation {
            id,
            customer,
            from,
            to,
            rate,
            start,
            end,
            state: ReservationState::Booked,
        });
        let lead_start =
            SimTime::from_nanos(start.as_nanos().saturating_sub(ACTIVATION_LEAD.as_nanos()))
                .max(self.now());
        self.sched
            .schedule_at(lead_start, Event::ReservationStart { reservation: id });
        self.sched
            .schedule_at(end, Event::ReservationEnd { reservation: id });
        self.trace.emit(
            self.now(),
            "resv",
            format!(
                "{id} booked {rate} {}→{} window [{start}, {end})",
                self.net.name(from),
                self.net.name(to)
            ),
        );
        Ok(id)
    }

    /// Read a reservation.
    pub fn reservation(&self, id: ReservationId) -> Option<&Reservation> {
        self.reservations.get(id.index())
    }

    /// Cancel a booking before its window opens.
    /// Returns `false` if it had already activated/completed.
    pub fn cancel_reservation(&mut self, id: ReservationId) -> bool {
        self.journal_record(|| crate::durability::Intent::CancelReservation {
            reservation: id.raw(),
        });
        let Some(r) = self.reservations.get_mut(id.index()) else {
            return false;
        };
        if r.state == ReservationState::Booked {
            r.state = ReservationState::Cancelled;
            self.trace
                .emit(self.sched.now(), "resv", format!("{id} cancelled"));
            true
        } else {
            false
        }
    }

    pub(crate) fn on_reservation_start(&mut self, id: ReservationId) {
        let (customer, from, to, rate) = {
            let Some(r) = self.reservations.get(id.index()) else {
                return;
            };
            if r.state != ReservationState::Booked {
                return; // cancelled
            }
            (r.customer, r.from, r.to, r.rate)
        };
        match self.request_bandwidth(customer, from, to, rate) {
            Ok(bundle) => {
                self.trace.emit(
                    self.now(),
                    "resv",
                    format!("{id} activating: {} members", bundle.members.len()),
                );
                self.reservations[id.index()].state = ReservationState::Active(bundle);
            }
            Err(e) => {
                self.trace
                    .emit(self.now(), "resv", format!("{id} activation FAILED: {e}"));
                self.metrics.counter("resv.activation_failed").incr();
                self.reservations[id.index()].state =
                    ReservationState::ActivationFailed(e.to_string());
            }
        }
    }

    pub(crate) fn on_reservation_end(&mut self, id: ReservationId) {
        let bundle = {
            let Some(r) = self.reservations.get(id.index()) else {
                return;
            };
            match &r.state {
                ReservationState::Active(b) => b.clone(),
                _ => return,
            }
        };
        self.release_bundle(&bundle);
        self.reservations[id.index()].state = ReservationState::Completed;
        self.trace
            .emit(self.now(), "resv", format!("{id} window over, released"));
        self.metrics.counter("resv.completed").incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::ConnState;
    use crate::controller::ControllerConfig;
    use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};

    fn booked_testbed() -> (Controller, photonic::TestbedIds, CustomerId) {
        let (net, ids) = PhotonicNetwork::testbed(10);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                ems: EmsProfile::calibrated_deterministic(),
                equalization: EqualizationModel::calibrated_deterministic(),
                ..ControllerConfig::default()
            },
        );
        ctl.add_otn_switch(ids.i, DataRate::from_gbps(320));
        ctl.add_otn_switch(ids.iv, DataRate::from_gbps(320));
        ctl.provision_trunk(ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(400));
        (ctl, ids, csp)
    }

    #[test]
    fn window_delivers_full_rate_at_start() {
        let (mut ctl, ids, csp) = booked_testbed();
        let start = ctl.now() + SimDuration::from_hours(2);
        let end = start + SimDuration::from_hours(4);
        let resv = ctl
            .reserve_bandwidth(csp, ids.i, ids.iv, DataRate::from_gbps(12), start, end)
            .unwrap();
        // At window open, the bundle is fully active (lead time covered
        // the λ setup).
        ctl.run_until(start);
        let r = ctl.reservation(resv).unwrap();
        let ReservationState::Active(bundle) = &r.state else {
            panic!("not active: {:?}", r.state)
        };
        assert_eq!(
            ctl.bundle_active_rate(bundle),
            DataRate::from_gbps(12),
            "full rate in service the moment the window opens"
        );
        // At window end, everything is released.
        ctl.run_until_idle();
        assert_eq!(
            ctl.reservation(resv).unwrap().state,
            ReservationState::Completed
        );
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
        assert_eq!(ctl.metrics.counter("resv.completed").get(), 1);
    }

    #[test]
    fn overbooking_refused_at_booking_time() {
        let (mut ctl, ids, csp) = booked_testbed();
        ctl.set_booking_capacity(ids.i, ids.iv, DataRate::from_gbps(20));
        let t0 = ctl.now();
        let w1 = (
            t0 + SimDuration::from_hours(1),
            t0 + SimDuration::from_hours(3),
        );
        let w2 = (
            t0 + SimDuration::from_hours(2),
            t0 + SimDuration::from_hours(4),
        );
        ctl.reserve_bandwidth(csp, ids.i, ids.iv, DataRate::from_gbps(15), w1.0, w1.1)
            .unwrap();
        // Overlapping 10 G would exceed the 20 G cap.
        let err = ctl
            .reserve_bandwidth(csp, ids.i, ids.iv, DataRate::from_gbps(10), w2.0, w2.1)
            .unwrap_err();
        assert_eq!(
            err,
            CalendarError::OverBooked {
                available: DataRate::from_gbps(5)
            }
        );
        // A non-overlapping window is fine.
        ctl.reserve_bandwidth(
            csp,
            ids.i,
            ids.iv,
            DataRate::from_gbps(20),
            t0 + SimDuration::from_hours(5),
            t0 + SimDuration::from_hours(6),
        )
        .unwrap();
    }

    #[test]
    fn bad_windows_rejected() {
        let (mut ctl, ids, csp) = booked_testbed();
        let now = ctl.now();
        assert_eq!(
            ctl.reserve_bandwidth(csp, ids.i, ids.iv, DataRate::from_gbps(1), now, now),
            Err(CalendarError::BadWindow)
        );
        ctl.run_until(now + SimDuration::from_hours(1));
        assert_eq!(
            ctl.reserve_bandwidth(
                csp,
                ids.i,
                ids.iv,
                DataRate::from_gbps(1),
                now,
                now + SimDuration::from_hours(2)
            ),
            Err(CalendarError::BadWindow),
            "start in the past"
        );
    }

    #[test]
    fn cancellation_prevents_activation() {
        let (mut ctl, ids, csp) = booked_testbed();
        let start = ctl.now() + SimDuration::from_hours(1);
        let resv = ctl
            .reserve_bandwidth(
                csp,
                ids.i,
                ids.iv,
                DataRate::from_gbps(10),
                start,
                start + SimDuration::from_hours(1),
            )
            .unwrap();
        assert!(ctl.cancel_reservation(resv));
        ctl.run_until_idle();
        assert_eq!(
            ctl.reservation(resv).unwrap().state,
            ReservationState::Cancelled
        );
        // Nothing was provisioned.
        assert!(ctl
            .connections()
            .all(|c| c.state != ConnState::Active || c.customer != csp));
        // Double-cancel reports false.
        assert!(!ctl.cancel_reservation(resv));
    }

    #[test]
    fn activation_failure_is_surfaced_not_silent() {
        let (mut ctl, ids, csp) = booked_testbed();
        let start = ctl.now() + SimDuration::from_hours(1);
        let resv = ctl
            .reserve_bandwidth(
                csp,
                ids.i,
                ids.iv,
                DataRate::from_gbps(10),
                start,
                start + SimDuration::from_hours(1),
            )
            .unwrap();
        // Sabotage the plant before activation: kill every OT at IV.
        for ot in ctl.net.idle_ots_at(ids.iv, LineRate::Gbps10) {
            ctl.net.transponder_mut(ot).fail();
        }
        ctl.run_until_idle();
        assert!(matches!(
            ctl.reservation(resv).unwrap().state,
            ReservationState::ActivationFailed(_)
        ));
        assert_eq!(ctl.metrics.counter("resv.activation_failed").get(), 1);
        // Quota rolled back.
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
    }

    #[test]
    fn nightly_backup_calendar_three_nights() {
        let (mut ctl, ids, csp) = booked_testbed();
        let mut resvs = Vec::new();
        for night in 0..3u64 {
            let start = SimTime::from_secs(night * 86_400 + 2 * 3_600);
            let end = start + SimDuration::from_hours(4);
            resvs.push(
                ctl.reserve_bandwidth(csp, ids.i, ids.iv, DataRate::from_gbps(12), start, end)
                    .unwrap(),
            );
        }
        ctl.run_until_idle();
        for r in resvs {
            assert_eq!(
                ctl.reservation(r).unwrap().state,
                ReservationState::Completed
            );
        }
        assert_eq!(ctl.metrics.counter("resv.completed").get(), 3);
        // 3 nights × (1 λ + 2 OTN) = 9 member circuits released.
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
    }
}
