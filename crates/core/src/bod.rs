//! The Bandwidth-on-Demand front door.
//!
//! §2.2: a CSP can "adjust the bandwidth according to their exact needs.
//! For example, they can use lower-speed circuits to augment a high-speed
//! circuit by using a combination of 2 × 1G OTN circuits and one 10G DWDM
//! to achieve a total bandwidth of 12G instead of consuming a second 10G
//! DWDM."
//!
//! [`Controller::request_bandwidth`] decomposes a target rate into a
//! bundle of member circuits:
//!
//! 1. as many full 10 G wavelengths as fit entirely;
//! 2. the remainder as 1 G OTN circuits if it is at most
//!    [`crate::controller::ControllerConfig::otn_remainder_max_gbps`]
//!    (and OTN reaches both endpoints), otherwise one more wavelength.
//!
//! The bundle is the customer-visible object; members are ordinary
//! connections and restore/tear down independently.

use simcore::{define_id, DataRate};

use otn::ClientSignal;
use photonic::{LineRate, RoadmId};

use crate::connection::{ConnState, ConnectionId};
use crate::controller::{Controller, RequestError};
use crate::tenant::CustomerId;

define_id!(
    /// Identifier of a BoD bundle.
    BundleId,
    "bundle"
);

/// A customer's composite bandwidth order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bundle {
    /// This bundle's id.
    pub id: BundleId,
    /// The owner.
    pub customer: CustomerId,
    /// A-end.
    pub from: RoadmId,
    /// Z-end.
    pub to: RoadmId,
    /// What was asked for.
    pub target: DataRate,
    /// Member circuits.
    pub members: Vec<ConnectionId>,
}

/// How a target rate will be decomposed (pure function — unit-testable
/// without a network).
///
/// ```
/// use griphon::Decomposition;
/// use simcore::DataRate;
///
/// // The paper's example: 12 G = one 10 G wavelength + 2×1G OTN.
/// let d = Decomposition::plan(DataRate::from_gbps(12), 4);
/// assert_eq!((d.wavelengths_10g, d.otn_1g), (1, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Full 10 G wavelengths.
    pub wavelengths_10g: u64,
    /// 1 G OTN circuits.
    pub otn_1g: u64,
}

impl Decomposition {
    /// Decompose `target` with the given OTN-remainder threshold.
    pub fn plan(target: DataRate, otn_remainder_max_gbps: u64) -> Decomposition {
        let ten = DataRate::from_gbps(10);
        let full = target.bps() / ten.bps();
        let rem_bps = target.bps() - full * ten.bps();
        let rem_gbps = rem_bps.div_ceil(DataRate::from_gbps(1).bps());
        if rem_gbps == 0 {
            Decomposition {
                wavelengths_10g: full,
                otn_1g: 0,
            }
        } else if rem_gbps <= otn_remainder_max_gbps {
            Decomposition {
                wavelengths_10g: full,
                otn_1g: rem_gbps,
            }
        } else {
            Decomposition {
                wavelengths_10g: full + 1,
                otn_1g: 0,
            }
        }
    }

    /// The bandwidth the decomposition delivers.
    pub fn delivered(&self) -> DataRate {
        DataRate::from_gbps(self.wavelengths_10g * 10 + self.otn_1g)
    }
}

impl Controller {
    /// Order `target` aggregate bandwidth between two data-center nodes.
    /// Members are provisioned immediately; the bundle is usable as each
    /// member activates (OTN members in seconds, wavelengths in ~a
    /// minute).
    ///
    /// On any member failure the already-ordered members are torn down
    /// and the error returned (all-or-nothing admission).
    pub fn request_bandwidth(
        &mut self,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        target: DataRate,
    ) -> Result<Bundle, RequestError> {
        // One journal record covers the whole composite order: the member
        // wavelength/OTN intents (and any rollback teardowns) below are
        // re-derived deterministically on replay.
        self.journal_record(|| crate::durability::Intent::Bandwidth {
            customer: customer.raw(),
            from: from.raw(),
            to: to.raw(),
            target_bps: target.bps(),
        });
        let d = Decomposition::plan(target, self.cfg_otn_remainder());
        let mut members: Vec<ConnectionId> = Vec::new();
        let mut failed: Option<RequestError> = None;
        self.journal_depth += 1;
        for _ in 0..d.wavelengths_10g {
            match self.request_wavelength(customer, from, to, LineRate::Gbps10) {
                Ok(id) => members.push(id),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        if failed.is_none() {
            for _ in 0..d.otn_1g {
                match self.request_subwavelength(customer, from, to, ClientSignal::GbE) {
                    Ok(id) => members.push(id),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
        }
        if let Some(e) = failed {
            // All-or-nothing: roll back whatever was already ordered.
            for id in &members {
                let _ = self.request_teardown(*id);
            }
            self.journal_depth -= 1;
            return Err(e);
        }
        self.journal_depth -= 1;
        let id = BundleId::new(self.metrics.counter("bod.bundles").get() as u32);
        self.metrics.counter("bod.bundles").incr();
        if self.spans.is_enabled() {
            let now = self.now();
            let sp = self.spans.record(now, now, "policy", "bod.bundle", None);
            self.spans.attr_u64(sp, "bundle", u64::from(id.raw()));
            self.spans
                .attr_u64(sp, "wavelengths_10g", d.wavelengths_10g);
            self.spans.attr_u64(sp, "otn_1g", d.otn_1g);
            self.spans
                .attr_u64(sp, "target_gbps", target.gbps_f64() as u64);
        }
        self.trace.emit(
            self.now(),
            "bod",
            format!(
                "{id} target {target}: {}×10G λ + {}×1G OTN",
                d.wavelengths_10g, d.otn_1g
            ),
        );
        Ok(Bundle {
            id,
            customer,
            from,
            to,
            target,
            members,
        })
    }

    /// Tear down every member of a bundle.
    pub fn release_bundle(&mut self, bundle: &Bundle) {
        self.journal_record(|| crate::durability::Intent::ReleaseBundle {
            members: bundle.members.iter().map(|m| m.raw()).collect(),
        });
        let members = bundle.members.clone();
        self.journaled(|c| c.release_members(&members));
    }

    /// Tear down a list of member connections (shared by
    /// [`Self::release_bundle`] and log replay, which has only the raw
    /// member list).
    pub(crate) fn release_members(&mut self, members: &[ConnectionId]) {
        for id in members {
            let _ = self.request_teardown(*id);
        }
    }

    /// Aggregate bandwidth of a bundle's currently Active members.
    pub fn bundle_active_rate(&self, bundle: &Bundle) -> DataRate {
        bundle
            .members
            .iter()
            .filter_map(|id| self.connection(*id))
            .filter(|c| c.state == ConnState::Active)
            .map(|c| c.kind.rate())
            .sum()
    }

    fn cfg_otn_remainder(&self) -> u64 {
        self.config().otn_remainder_max_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use photonic::{EmsProfile, EqualizationModel, PhotonicNetwork};

    #[test]
    fn paper_example_12g() {
        let d = Decomposition::plan(DataRate::from_gbps(12), 4);
        assert_eq!(
            d,
            Decomposition {
                wavelengths_10g: 1,
                otn_1g: 2
            }
        );
        assert_eq!(d.delivered(), DataRate::from_gbps(12));
    }

    #[test]
    fn large_remainder_takes_another_wavelength() {
        let d = Decomposition::plan(DataRate::from_gbps(18), 4);
        assert_eq!(
            d,
            Decomposition {
                wavelengths_10g: 2,
                otn_1g: 0
            }
        );
        assert_eq!(d.delivered(), DataRate::from_gbps(20)); // over-delivery
    }

    #[test]
    fn exact_multiples_use_only_wavelengths() {
        let d = Decomposition::plan(DataRate::from_gbps(30), 4);
        assert_eq!(d.wavelengths_10g, 3);
        assert_eq!(d.otn_1g, 0);
    }

    #[test]
    fn small_rates_use_only_otn() {
        let d = Decomposition::plan(DataRate::from_gbps(2), 4);
        assert_eq!(
            d,
            Decomposition {
                wavelengths_10g: 0,
                otn_1g: 2
            }
        );
        // Fractional gigabits round up to whole OTN circuits.
        let d = Decomposition::plan(DataRate::from_mbps(1500), 4);
        assert_eq!(d.otn_1g, 2);
    }

    #[test]
    fn threshold_is_respected() {
        // With threshold 2, a 3 G remainder forces a wavelength.
        let d = Decomposition::plan(DataRate::from_gbps(13), 2);
        assert_eq!(d.wavelengths_10g, 2);
        assert_eq!(d.otn_1g, 0);
    }

    fn bod_testbed() -> (Controller, photonic::TestbedIds, CustomerId) {
        let (net, ids) = PhotonicNetwork::testbed(8);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                ems: EmsProfile::calibrated_deterministic(),
                equalization: EqualizationModel::calibrated_deterministic(),
                ..ControllerConfig::default()
            },
        );
        ctl.add_otn_switch(ids.i, DataRate::from_gbps(320));
        ctl.add_otn_switch(ids.iv, DataRate::from_gbps(320));
        ctl.provision_trunk(ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        (ctl, ids, csp)
    }

    #[test]
    fn twelve_gig_bundle_end_to_end() {
        let (mut ctl, ids, csp) = bod_testbed();
        let bundle = ctl
            .request_bandwidth(csp, ids.i, ids.iv, DataRate::from_gbps(12))
            .unwrap();
        assert_eq!(bundle.members.len(), 3); // 1 λ + 2 OTN
        ctl.run_until_idle();
        assert_eq!(ctl.bundle_active_rate(&bundle), DataRate::from_gbps(12));
        // The OTN members came up long before the wavelength: quota shows
        // the full 12 G committed.
        assert_eq!(
            ctl.tenants.get(csp).unwrap().in_use,
            DataRate::from_gbps(12)
        );
        ctl.release_bundle(&bundle);
        ctl.run_until_idle();
        assert_eq!(ctl.bundle_active_rate(&bundle), DataRate::ZERO);
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
    }

    #[test]
    fn bundle_rolls_back_on_failure() {
        let (mut ctl, ids, csp) = bod_testbed();
        // 22 G = 2×10G λ + 2×1G OTN; testbed has one 8-TS trunk so OTN is
        // fine, but block wavelengths by draining the OT pool at IV.
        let ots = ctl.net.idle_ots_at(ids.iv, LineRate::Gbps10);
        for ot in &ots {
            ctl.net.transponder_mut(*ot).fail();
        }
        let err = ctl
            .request_bandwidth(csp, ids.i, ids.iv, DataRate::from_gbps(22))
            .unwrap_err();
        assert!(matches!(err, RequestError::Rwa(_)));
        ctl.run_until_idle();
        // Nothing left provisioned or charged.
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
    }
}
