//! The GRIPhoN controller.
//!
//! §2.2: *"The controller is responsible for keeping track of the
//! available network resources in its database, communication with the
//! network elements (FXC controllers, OTN switch EMS, ROADM EMS and NTE
//! controllers) in order to create or tear down the connections ordered
//! by the CSPs, capacity and resource management, inventory database
//! management, failure detection, localization and automated
//! restorations."*
//!
//! This module holds the controller's core: state, the event loop, and
//! wavelength connection setup/teardown. Fault management lives in
//! [`crate::fault`], bridge-and-roll and maintenance in
//! [`crate::maintenance`], OTN trunks and sub-wavelength circuits in
//! [`crate::otn_service`], and the composite BoD front door in
//! [`crate::bod`] — all as further `impl Controller` blocks.
//!
//! ## Concurrency & time model
//!
//! The controller *claims* resources synchronously at admission (its
//! inventory database is authoritative, so two in-flight orders can never
//! double-allocate a wavelength or transponder), then simulates the
//! element-management latency by scheduling a completion event. A
//! connection carries traffic only once its workflow completes — exactly
//! the window the paper measures in Table 2.
//!
//! Restorations are processed one at a time (a deliberate model of the
//! per-EMS command serialization the paper observed); see
//! [`crate::fault`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use simcore::{
    LatencyRecorder, MetricsRegistry, Scheduler, SimDuration, SimRng, SimTime, SpanId,
    SpanRecorder, TraceLog,
};

use otn::{OtnSwitch, XcId};
use photonic::alarm::DetectionModel;
use photonic::{
    Alarm, DegreeId, EmsCommand, EmsLatencyModel, EmsProfile, EqualizationModel, FiberId, LineRate,
    PhotonicNetwork, RoadmId,
};

use crate::connection::{ConnState, Connection, ConnectionId, ConnectionKind, Resources, TrunkId};
use crate::rwa::{self, RwaConfig, RwaError, WavelengthPlan};
use crate::tenant::{AdmissionError, CustomerId, TenantRegistry};

/// Tunables of a controller instance.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Routing/wavelength-assignment parameters.
    pub rwa: RwaConfig,
    /// EMS latency profile.
    pub ems: EmsProfile,
    /// Equalization timing model.
    pub equalization: EqualizationModel,
    /// Alarm detection latencies.
    pub detection: DetectionModel,
    /// RNG seed (jitter, workload forks).
    pub seed: u64,
    /// Automatically restore failed connections (GRIPhoN behaviour).
    /// Disable to model "today's reality" manual repair.
    pub auto_restore: bool,
    /// Concurrent restoration workflows the EMS plane sustains. The
    /// paper's testbed serialized commands (1); §4 asks what faster
    /// control planes buy — raise this to find out (experiment E2b).
    pub restoration_parallelism: usize,
    /// Rate remainder (in 1 G units) at or below which composite BoD uses
    /// OTN circuits instead of another wavelength (§2.2's 12 G example).
    pub otn_remainder_max_gbps: u64,
    /// After a repair, automatically migrate restored connections back
    /// to shorter paths via bridge-and-roll (§2.2: "reversion following
    /// a failure restoration (moving traffic from backup paths to
    /// repaired primary)").
    pub auto_revert: bool,
    /// Stage wavelength power ramps to suppress add/remove transients
    /// (§4's "power transient tolerance" requirement). When false, every
    /// add/remove exposes co-propagating channels and the controller
    /// records the disturbances.
    pub staged_power_ramp: bool,
    /// The transient exposure model used when ramps are not staged.
    pub transients: photonic::power::TransientModel,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            rwa: RwaConfig::default(),
            ems: EmsProfile::calibrated(),
            equalization: EqualizationModel::calibrated(),
            detection: DetectionModel::default(),
            seed: 0xC0FFEE,
            auto_restore: true,
            restoration_parallelism: 1,
            auto_revert: true,
            otn_remainder_max_gbps: 4,
            staged_power_ramp: true,
            transients: photonic::power::TransientModel::default(),
        }
    }
}

/// Why a customer order was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Tenant admission failed.
    Admission(AdmissionError),
    /// No provisionable path.
    Rwa(RwaError),
    /// Unknown connection id.
    UnknownConnection(ConnectionId),
    /// The connection is in a state that does not allow the operation.
    BadState(ConnectionId, ConnState),
    /// Sub-wavelength service needs OTN switches at both endpoints.
    NoOtnSwitch(RoadmId),
    /// No trunk route with enough free tributary slots.
    NoTrunkCapacity,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Admission(e) => write!(f, "admission: {e}"),
            RequestError::Rwa(e) => write!(f, "routing: {e}"),
            RequestError::UnknownConnection(c) => write!(f, "unknown {c}"),
            RequestError::BadState(c, s) => write!(f, "{c} in state {s:?}"),
            RequestError::NoOtnSwitch(n) => write!(f, "no OTN switch at {n}"),
            RequestError::NoTrunkCapacity => write!(f, "no trunk capacity"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<AdmissionError> for RequestError {
    fn from(e: AdmissionError) -> Self {
        RequestError::Admission(e)
    }
}

impl From<RwaError> for RequestError {
    fn from(e: RwaError) -> Self {
        RequestError::Rwa(e)
    }
}

/// Workflow completion classes the event loop dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkflowKind {
    /// Initial provisioning finished → Active.
    Setup,
    /// Teardown finished → Released.
    Teardown,
    /// Restoration path in service → Active again.
    Restore,
    /// Bridge path built (traffic still on the old path).
    Bridge,
    /// Traffic rolled to the bridge (the only service hit).
    Roll,
    /// 1+1 tail-end selector finished switching legs.
    ProtectionSwitch,
}

impl WorkflowKind {
    /// Stable label for the workflow ledger and traces.
    pub fn label(self) -> &'static str {
        match self {
            WorkflowKind::Setup => "setup",
            WorkflowKind::Teardown => "teardown",
            WorkflowKind::Restore => "restore",
            WorkflowKind::Bridge => "bridge",
            WorkflowKind::Roll => "roll",
            WorkflowKind::ProtectionSwitch => "protection_switch",
        }
    }
}

/// Events flowing through the controller's scheduler.
#[derive(Debug, Clone)]
pub enum Event {
    /// A provisioning/teardown/restore/bridge/roll workflow completed.
    WorkflowDone {
        /// The connection it belongs to.
        conn: ConnectionId,
        /// Which workflow.
        kind: WorkflowKind,
    },
    /// An OTN trunk's underlying wavelength is in service.
    TrunkReady {
        /// The trunk.
        trunk: TrunkId,
    },
    /// A restored OTN trunk is back in service after a failure.
    TrunkRestored {
        /// The trunk.
        trunk: TrunkId,
    },
    /// An alarm surfaced from the network.
    AlarmDelivered(Alarm),
    /// A fiber repair crew finished.
    FiberRepaired {
        /// The repaired fiber.
        fiber: FiberId,
    },
    /// An advance reservation's lead window opened — provision it.
    ReservationStart {
        /// The reservation.
        reservation: crate::calendar::ReservationId,
    },
    /// An advance reservation's service window closed — release it.
    ReservationEnd {
        /// The reservation.
        reservation: crate::calendar::ReservationId,
    },
}

/// The per-command duration draws of one wavelength setup workflow.
///
/// Sampled once at admission by [`Controller::wavelength_setup_sample`].
/// [`SetupSample::total`] — serial phases, each parallel command group
/// contributing its max — drives the completion event, and the *same*
/// draws feed the trace breakdown and the span tree, so every consumer
/// sees one consistent timeline.
#[derive(Debug, Clone)]
pub(crate) struct SetupSample {
    /// EMS provisioning-session bookkeeping.
    pub session: SimDuration,
    /// Client-side FXC switches (parallel pair).
    pub fxc: [SimDuration; 2],
    /// Per-node ROADM/WSS configuration (parallel; `hops + 1` entries).
    pub roadm: Vec<SimDuration>,
    /// Transponder laser tunes at both ends (parallel pair).
    pub tune: [SimDuration; 2],
    /// End-to-end path validation.
    pub validate: SimDuration,
    /// Power equalization (see `photonic::power`).
    pub equalize: SimDuration,
}

impl SetupSample {
    /// Duration the parallel FXC pair occupies.
    pub fn fxc_max(&self) -> SimDuration {
        self.fxc[0].max(self.fxc[1])
    }

    /// Duration the parallel per-node ROADM group occupies.
    pub fn roadm_max(&self) -> SimDuration {
        self.roadm.iter().copied().max().expect("at least one node")
    }

    /// Duration the parallel tune pair occupies.
    pub fn tune_max(&self) -> SimDuration {
        self.tune[0].max(self.tune[1])
    }

    /// End-to-end workflow duration.
    pub fn total(&self) -> SimDuration {
        self.session
            + self.fxc_max()
            + self.roadm_max()
            + self.tune_max()
            + self.validate
            + self.equalize
    }
}

impl fmt::Display for SetupSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "session={} fxc={} roadm={} tune={} validate={} equalize={}",
            self.session,
            self.fxc_max(),
            self.roadm_max(),
            self.tune_max(),
            self.validate,
            self.equalize
        )
    }
}

/// Per-command draws of a wavelength teardown workflow:
/// session → (ROADM deconfigure ∥ OT release) → FXC.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TeardownSample {
    /// Teardown-order bookkeeping.
    pub session: SimDuration,
    /// ROADM/WSS deconfiguration (parallel with the laser release).
    pub roadm_deconf: SimDuration,
    /// Transponder laser release (parallel with the deconfigure).
    pub ot_release: SimDuration,
    /// Client-side FXC release.
    pub fxc: SimDuration,
}

impl TeardownSample {
    /// Duration the parallel deconfigure/release group occupies.
    pub fn deconf_max(&self) -> SimDuration {
        self.roadm_deconf.max(self.ot_release)
    }

    /// End-to-end workflow duration.
    pub fn total(&self) -> SimDuration {
        self.session + self.deconf_max() + self.fxc
    }
}

/// Per-command draws of a sub-wavelength (OTN) setup workflow.
#[derive(Debug, Clone)]
pub(crate) struct SubwlSetupSample {
    /// OTN order bookkeeping.
    pub session: SimDuration,
    /// Electronic cross-connects, one per switch (parallel).
    pub xcs: Vec<SimDuration>,
}

impl SubwlSetupSample {
    /// Duration the parallel cross-connect group occupies.
    pub fn xc_max(&self) -> SimDuration {
        self.xcs.iter().copied().max().expect("at least one switch")
    }

    /// End-to-end workflow duration.
    pub fn total(&self) -> SimDuration {
        self.session + self.xc_max()
    }
}

/// Per-command draws of a sub-wavelength teardown workflow.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SubwlTeardownSample {
    /// OTN order bookkeeping.
    pub session: SimDuration,
    /// Cross-connect removal.
    pub xc: SimDuration,
}

impl SubwlTeardownSample {
    /// End-to-end workflow duration.
    pub fn total(&self) -> SimDuration {
        self.session + self.xc
    }
}

/// An OTN trunk: a carrier-internal wavelength between two OTN switches.
#[derive(Debug, Clone)]
pub struct Trunk {
    /// This trunk's id.
    pub id: TrunkId,
    /// A-end node.
    pub a: RoadmId,
    /// Z-end node.
    pub b: RoadmId,
    /// Its wavelength plan on the photonic layer.
    pub plan: WavelengthPlan,
    /// Line rate (determines tributary capacity).
    pub rate: LineRate,
    /// `(switch index, line port)` at the A end.
    pub line_a: (usize, otn::LinePortId),
    /// `(switch index, line port)` at the Z end.
    pub line_b: (usize, otn::LinePortId),
    /// In service?
    pub ready: bool,
}

/// The GRIPhoN controller (see module docs).
pub struct Controller {
    /// The photonic plant under control.
    pub net: PhotonicNetwork,
    pub(crate) switches: Vec<OtnSwitch>,
    pub(crate) switch_at: BTreeMap<RoadmId, usize>,
    pub(crate) trunks: Vec<Trunk>,
    /// Tenant table (public for scenario setup).
    pub tenants: TenantRegistry,
    pub(crate) cfg: ControllerConfig,
    pub(crate) ems: EmsLatencyModel,
    pub(crate) rng: SimRng,
    pub(crate) sched: Scheduler<Event>,
    pub(crate) conns: BTreeMap<ConnectionId, Connection>,
    next_conn: u32,
    pub(crate) next_trunk: u32,
    pub(crate) restoration_queue: VecDeque<ConnectionId>,
    pub(crate) restorations_in_flight: usize,
    pub(crate) down_fibers: BTreeSet<FiberId>,
    pub(crate) pending_maintenance: BTreeMap<FiberId, BTreeSet<ConnectionId>>,
    pub(crate) reservations: Vec<crate::calendar::Reservation>,
    pub(crate) booking_caps: BTreeMap<(RoadmId, RoadmId), simcore::DataRate>,
    /// Client-side FXC per PoP (created on first use).
    fxc_at: BTreeMap<RoadmId, photonic::FxcId>,
    /// Structured trace of everything the controller did.
    pub trace: TraceLog,
    /// Hierarchical phase spans of every workflow (setup, teardown,
    /// restoration, grooming, policy decisions). **Disabled by default**
    /// — enable with `spans.set_enabled(true)` before driving the
    /// controller; see `simcore::span` for the determinism and overhead
    /// contracts.
    pub spans: SpanRecorder,
    /// Open workflow root spans awaiting their completion event.
    pub(crate) workflow_spans: BTreeMap<(ConnectionId, WorkflowKind), SpanId>,
    /// Open trunk provisioning/restoration root spans.
    pub(crate) trunk_spans: BTreeMap<TrunkId, SpanId>,
    /// When each queued restoration entered the queue (span attribution
    /// of queue wait vs execution; populated only while spans are on).
    pub(crate) restoration_enqueued_at: BTreeMap<ConnectionId, SimTime>,
    /// Experiment metrics.
    pub metrics: MetricsRegistry,
    /// The NOC layer: telemetry scrape engine and alarm-correlation
    /// engine (`DESIGN.md` §10). **Disabled by default** — enable with
    /// `noc.enable(interval)`; a disabled NOC costs nothing and the
    /// simulation outcome is byte-identical either way.
    pub noc: crate::noc::Noc,
    /// The path-computation engine (route cache + Dijkstra scratch),
    /// shared by every planning call this controller makes.
    pub(crate) engine: rwa::PathEngine,
    /// Wall-clock planning latency (host time, *not* simulated time).
    /// Kept out of `metrics` so deterministic scenario reports stay
    /// bit-identical across runs; read it via [`Controller::perf_summary`].
    pub perf: LatencyRecorder,
    /// The write-ahead intent log, when durability is enabled
    /// ([`Controller::enable_journal`]). `None` costs nothing and the
    /// simulation outcome is byte-identical either way.
    pub(crate) journal: Option<crate::durability::Wal>,
    /// Re-entrancy depth of intent execution. Only depth-0 (northbound)
    /// calls journal: nested intents issued by composite operations or by
    /// event handlers are re-derived deterministically on replay.
    pub(crate) journal_depth: u32,
    /// In-flight EMS workflow ledger: which device workflows are open,
    /// and how recovery disposed of them (resumed vs rolled back).
    pub workflows: photonic::WorkflowLedger,
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("now", &self.sched.now())
            .field("events", &self.sched.events_delivered())
            .field("conns", &self.conns.len())
            .field("trunks", &self.trunks.len())
            .finish_non_exhaustive()
    }
}

impl Controller {
    /// A controller over `net` with the given configuration.
    pub fn new(net: PhotonicNetwork, cfg: ControllerConfig) -> Controller {
        Controller {
            net,
            switches: Vec::new(),
            switch_at: BTreeMap::new(),
            trunks: Vec::new(),
            tenants: TenantRegistry::new(),
            ems: EmsLatencyModel::new(cfg.ems),
            rng: SimRng::new(cfg.seed),
            sched: Scheduler::new(),
            conns: BTreeMap::new(),
            next_conn: 0,
            next_trunk: 0,
            restoration_queue: VecDeque::new(),
            restorations_in_flight: 0,
            down_fibers: BTreeSet::new(),
            pending_maintenance: BTreeMap::new(),
            reservations: Vec::new(),
            booking_caps: BTreeMap::new(),
            fxc_at: BTreeMap::new(),
            trace: TraceLog::default(),
            spans: SpanRecorder::default(),
            workflow_spans: BTreeMap::new(),
            trunk_spans: BTreeMap::new(),
            restoration_enqueued_at: BTreeMap::new(),
            metrics: MetricsRegistry::new(),
            noc: crate::noc::Noc::new(),
            engine: rwa::PathEngine::new(),
            perf: LatencyRecorder::new(),
            journal: None,
            journal_depth: 0,
            workflows: photonic::WorkflowLedger::default(),
            cfg,
        }
    }

    // ── durability ──────────────────────────────────────────────────

    /// Turn on write-ahead intent logging. Every subsequent northbound
    /// mutating call is appended to the log before it executes.
    pub fn enable_journal(&mut self, cfg: crate::durability::WalConfig) {
        self.journal = Some(crate::durability::Wal::new(cfg));
    }

    /// The write-ahead log, if journaling is enabled.
    pub fn journal(&self) -> Option<&crate::durability::Wal> {
        self.journal.as_ref()
    }

    /// Install an already-populated log (recovery reinstalls the
    /// surviving history so the replica keeps journaling where the
    /// primary left off).
    pub fn install_journal(&mut self, wal: crate::durability::Wal) {
        self.journal = Some(wal);
    }

    /// Detach the log, leaving journaling off.
    pub fn take_journal(&mut self) -> Option<crate::durability::Wal> {
        self.journal.take()
    }

    /// Append an intent to the journal — but only when called from the
    /// northbound surface (depth 0). Composite operations and event
    /// handlers bump [`Self::journal_depth`] around nested intent calls,
    /// so replaying the top-level record regenerates the nested activity
    /// instead of double-applying it. The closure keeps the encoding off
    /// the hot path when journaling is disabled.
    pub(crate) fn journal_record(&mut self, make: impl FnOnce() -> crate::durability::Intent) {
        if self.journal_depth == 0 {
            if let Some(w) = self.journal.as_mut() {
                let now = self.sched.now();
                w.append(now, &make());
            }
        }
    }

    /// Run `f` with journaling suppressed: nested intents it issues are
    /// covered by the caller's (already appended) record.
    pub(crate) fn journaled<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        self.journal_depth += 1;
        let r = f(self);
        self.journal_depth -= 1;
        r
    }

    /// Group commit: run `f` with the journal in batch mode, so every
    /// intent it issues (an admission burst, a composite workflow's
    /// setup phase) is accumulated and flushed as one contiguous framed
    /// append covered by a single batch CRC. The flushed bytes are
    /// **identical** to the one-record-per-append path — batching changes
    /// when frames hit the segment, never what they are. Returns `f`'s
    /// result and the commit receipt (`None` when journaling is off, the
    /// batch was empty inside a nested call, or no records were issued —
    /// an empty batch still yields a receipt with `records == 0`).
    pub fn journal_batch<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> T,
    ) -> (T, Option<crate::durability::BatchCommit>) {
        if let Some(w) = self.journal.as_mut() {
            w.begin_batch();
        }
        let r = f(self);
        let commit = self.journal.as_mut().and_then(|w| w.commit_batch());
        (r, commit)
    }

    /// Register a tenant through the journaled northbound surface.
    /// Scenario code that builds genesis state before enabling the
    /// journal can keep using `tenants.register` directly.
    pub fn register_tenant(&mut self, name: &str, quota: simcore::DataRate) -> CustomerId {
        self.register_tenant_with_priority(name, quota, crate::tenant::DEFAULT_PRIORITY)
    }

    /// [`Self::register_tenant`] with an explicit restoration priority.
    pub fn register_tenant_with_priority(
        &mut self,
        name: &str,
        quota: simcore::DataRate,
        priority: u8,
    ) -> CustomerId {
        self.journal_record(|| crate::durability::Intent::RegisterTenant {
            name: name.to_string(),
            quota_bps: quota.bps(),
            priority,
        });
        self.tenants.register_with_priority(name, quota, priority)
    }

    /// Plan a wavelength connection through the controller's
    /// [`rwa::PathEngine`], recording wall-clock planning latency in
    /// [`Controller::perf`]. All internal planning goes through here so
    /// the route cache and scratch buffers are shared and the percentiles
    /// cover every call.
    pub(crate) fn plan_wavelength(
        &mut self,
        from: RoadmId,
        to: RoadmId,
        rate: photonic::LineRate,
        excluded: &[photonic::FiberId],
    ) -> Result<WavelengthPlan, RwaError> {
        let t0 = std::time::Instant::now();
        let r = self
            .engine
            .plan_wavelength(&self.net, &self.cfg.rwa, from, to, rate, excluded);
        let host_ns = t0.elapsed().as_nanos() as u64;
        self.perf.record_ns(host_ns);
        if self.spans.is_enabled() {
            let now = self.sched.now();
            let sp = self.spans.record(now, now, "plan", "rwa.plan", None);
            self.spans.attr_u64(sp, "ok", u64::from(r.is_ok()));
            // Wall-clock readings are non-deterministic; they enter spans
            // only under the explicit host-attrs opt-in (perf pipeline).
            if self.spans.host_attrs_enabled() {
                self.spans.attr_u64(sp, "host_ns", host_ns);
            }
        }
        r
    }

    /// One-line wall-clock performance summary: planning-latency
    /// percentiles and route-cache hit rate.
    pub fn perf_summary(&self) -> String {
        let s = self.engine.route_cache_stats();
        format!(
            "plan_wavelength {} | route-cache {} hits / {} misses / {} evictions ({} resident)",
            self.perf.summary(),
            s.hits,
            s.misses,
            s.evictions,
            s.entries
        )
    }

    /// Route-cache counters of the controller's path engine.
    ///
    /// Deliberately *not* folded into [`Controller::metrics`]: the
    /// metrics registry is part of the state digest, and cache traffic is
    /// derived, host-local state — a failover replica replans cold with
    /// different hit counts while carrying identical persistent state.
    /// Exporters publish these through
    /// [`rwa::PathEngine::export_cache_metrics`] instead.
    pub fn route_cache_stats(&self) -> rwa::RouteCacheStats {
        self.engine.route_cache_stats()
    }

    /// Publish the path engine's route-cache counters into a metrics
    /// family registry (see [`rwa::PathEngine::export_cache_metrics`]).
    pub fn export_route_cache_metrics(&self, reg: &mut simcore::metrics::FamilyRegistry) {
        self.engine.export_cache_metrics(reg);
    }

    /// Install a validated region partition on the path engine: search is
    /// then restricted to the endpoint regions plus the backbone, which
    /// is provably route-identical under the single-gateway invariant
    /// (see [`rwa::RegionMap`]) and keeps per-query cost tracking region
    /// size instead of plant size. Survives [`Controller::fork`].
    pub fn install_region_map(&mut self, map: rwa::RegionMap) -> Result<(), String> {
        self.engine.install_region_map(&self.net, map)
    }

    /// Estimated heap footprint of the controller's hot state in bytes,
    /// itemised per subsystem — the scale benchmark's memory column. An
    /// estimate for capacity planning, not an allocator measurement.
    pub fn memory_footprint(&self) -> simcore::metrics::Footprint {
        use std::mem::size_of_val;
        let mut fp = simcore::metrics::Footprint::new();
        fp.add("photonic plant", self.net.memory_footprint() as u64);
        fp.add(
            "connections",
            (self.conns.len() * 256 + self.trunks.len() * 192) as u64,
        );
        fp.add("scheduler", (self.sched.pending() * 128) as u64);
        fp.add("trace ring", (self.trace.len() * 96) as u64);
        fp.add("rng + counters", size_of_val(&self.rng) as u64);
        fp
    }

    // ── time ────────────────────────────────────────────────────────

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Process one pending event, if any. Returns its timestamp.
    pub fn step(&mut self) -> Option<SimTime> {
        let (t, ev) = self.sched.pop()?;
        // Event handlers are derived activity: any intents they issue
        // (restoration, reservation activation) replay from the schedule,
        // not the journal.
        self.journaled(|c| c.handle(ev));
        self.noc_pump();
        Some(t)
    }

    /// Run the event loop until `deadline` (events at exactly `deadline`
    /// are processed); the clock ends at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((_, ev)) = self.sched.pop_until(deadline) {
            self.journaled(|c| c.handle(ev));
            self.noc_pump();
        }
        if self.sched.now() < deadline {
            self.sched.advance_to(deadline);
        }
        self.noc_pump();
    }

    /// Run until no events remain.
    pub fn run_until_idle(&mut self) {
        while self.step().is_some() {}
    }

    /// Timestamp of the next pending controller event, without processing
    /// it. Lets external engines (the event-driven workload scheduler)
    /// fast-forward to exactly the next point at which controller state
    /// can change.
    pub fn peek_event_time(&mut self) -> Option<SimTime> {
        self.sched.peek_time()
    }

    /// Total events the controller has processed (throughput metric).
    pub fn events_processed(&self) -> u64 {
        self.sched.events_delivered()
    }

    /// Live events waiting in the southbound scheduler. Together with
    /// [`Self::peek_event_time`] this is the backlog signal the service
    /// plane exports as a labeled gauge, so NOC scrapes can watch
    /// southbound pressure build during overload scenarios.
    pub fn pending_events(&self) -> usize {
        self.sched.pending()
    }

    // ── lookups ─────────────────────────────────────────────────────

    /// Read a connection.
    pub fn connection(&self, id: ConnectionId) -> Option<&Connection> {
        self.conns.get(&id)
    }

    /// All connections.
    pub fn connections(&self) -> impl Iterator<Item = &Connection> {
        self.conns.values()
    }

    /// Read a trunk.
    pub fn trunk(&self, id: TrunkId) -> Option<&Trunk> {
        self.trunks.get(id.index())
    }

    /// All trunks.
    pub fn trunks(&self) -> &[Trunk] {
        &self.trunks
    }

    /// Read an OTN switch by internal index.
    pub fn otn_switch(&self, idx: usize) -> &OtnSwitch {
        &self.switches[idx]
    }

    /// The OTN switch index at a node, if one is installed.
    pub fn otn_switch_at(&self, node: RoadmId) -> Option<usize> {
        self.switch_at.get(&node).copied()
    }

    /// The controller's EMS latency model (read-only).
    pub fn ems_profile(&self) -> &EmsProfile {
        self.ems.profile()
    }

    /// The configuration this controller runs with.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    // ── wavelength service ──────────────────────────────────────────

    /// Order a full-wavelength connection for `customer`.
    ///
    /// On success the connection is `Provisioning`; it becomes `Active`
    /// when its workflow completes (60–70 s with the calibrated profile).
    pub fn request_wavelength(
        &mut self,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        rate: LineRate,
    ) -> Result<ConnectionId, RequestError> {
        self.journal_record(|| crate::durability::Intent::Wavelength {
            customer: customer.raw(),
            from: from.raw(),
            to: to.raw(),
            rate: crate::durability::wal::encode_rate(rate),
        });
        self.tenants.admit(customer, rate.rate())?;
        let plan = match self.plan_wavelength(from, to, rate, &[]) {
            Ok(p) => p,
            Err(e) => {
                self.tenants.release(customer, rate.rate());
                return Err(e.into());
            }
        };
        let id = self.fresh_conn_id();
        let mut conn = Connection::new(
            id,
            customer,
            from,
            to,
            ConnectionKind::Wavelength { rate },
            self.now(),
        );
        self.claim_plan(&plan);
        conn.resources = Some(Resources::Wavelength(plan.clone()));
        self.conns.insert(id, conn);
        let sample = self.wavelength_setup_sample(plan.hops());
        let dur = sample.total();
        self.trace.emit(
            self.now(),
            "conn",
            format!(
                "{id} setup started {}→{} λ{} hops={} eta={dur} [{sample}]",
                self.net.name(from),
                self.net.name(to),
                plan.lambda.0,
                plan.hops()
            ),
        );
        let t0 = self.now();
        let root = self.open_workflow_span(id, WorkflowKind::Setup, t0, "conn.setup");
        if root.is_valid() {
            self.spans.attr_u64(root, "hops", plan.hops() as u64);
            self.spans
                .attr_u64(root, "lambda", u64::from(plan.lambda.0));
            self.emit_setup_spans(root, t0, &sample);
        }
        self.schedule_workflow(dur, id, WorkflowKind::Setup);
        Ok(id)
    }

    /// Order teardown of a connection (any non-terminal state).
    pub fn request_teardown(&mut self, id: ConnectionId) -> Result<(), RequestError> {
        self.journal_record(|| crate::durability::Intent::Teardown { conn: id.raw() });
        let conn = self
            .conns
            .get_mut(&id)
            .ok_or(RequestError::UnknownConnection(id))?;
        match conn.state {
            ConnState::Active | ConnState::Provisioning | ConnState::Failed => {
                conn.outage_end(self.sched.now());
                conn.transition(ConnState::TearingDown);
            }
            s => return Err(RequestError::BadState(id, s)),
        }
        let is_subwl = matches!(conn.kind, ConnectionKind::SubWavelength { .. });
        let t0 = self.now();
        let dur = if is_subwl {
            let s = self.subwavelength_teardown_sample();
            let root = self.open_workflow_span(id, WorkflowKind::Teardown, t0, "conn.teardown");
            self.emit_subwl_teardown_spans(root, t0, &s);
            s.total()
        } else {
            let s = self.wavelength_teardown_sample();
            let root = self.open_workflow_span(id, WorkflowKind::Teardown, t0, "conn.teardown");
            self.emit_teardown_spans(root, t0, &s);
            s.total()
        };
        self.trace.emit(
            self.now(),
            "conn",
            format!("{id} teardown started eta={dur}"),
        );
        self.schedule_workflow(dur, id, WorkflowKind::Teardown);
        Ok(())
    }

    // ── workflow durations ──────────────────────────────────────────

    /// Sample the per-command durations of a wavelength setup workflow
    /// for an `n`-hop path: session → FXC∥FXC → ROADM configs in
    /// parallel → OT tunes in parallel → validate → equalize. The total
    /// ([`SetupSample::total`]) drives the completion event; the same
    /// draws feed the trace breakdown and the span tree.
    pub(crate) fn wavelength_setup_sample(&mut self, hops: usize) -> SetupSample {
        let session = self.ems.latency(EmsCommand::SetupSession, &mut self.rng);
        let fxc = [
            self.ems.latency(EmsCommand::FxcSwitch, &mut self.rng),
            self.ems.latency(EmsCommand::FxcSwitch, &mut self.rng),
        ];
        let nodes = hops + 1;
        let roadm = (0..nodes)
            .map(|_| self.ems.latency(EmsCommand::RoadmConfigure, &mut self.rng))
            .collect();
        let tune = [
            self.ems.latency(EmsCommand::OtTune, &mut self.rng),
            self.ems.latency(EmsCommand::OtTune, &mut self.rng),
        ];
        let validate = self.ems.latency(EmsCommand::PathValidate, &mut self.rng);
        let eq_model = self.cfg.equalization;
        let equalize = eq_model.duration(hops, &mut self.rng);
        SetupSample {
            session,
            fxc,
            roadm,
            tune,
            validate,
            equalize,
        }
    }

    /// Sample a wavelength teardown workflow:
    /// session → (ROADM deconfigs ∥ OT releases) → FXC.
    pub(crate) fn wavelength_teardown_sample(&mut self) -> TeardownSample {
        let session = self.ems.latency(EmsCommand::TeardownSession, &mut self.rng);
        let roadm_deconf = self
            .ems
            .latency(EmsCommand::RoadmDeconfigure, &mut self.rng);
        let ot_release = self.ems.latency(EmsCommand::OtRelease, &mut self.rng);
        let fxc = self.ems.latency(EmsCommand::FxcSwitch, &mut self.rng);
        TeardownSample {
            session,
            roadm_deconf,
            ot_release,
            fxc,
        }
    }

    /// Sub-wavelength (OTN) setup: light session + parallel electronic
    /// cross-connects, one per traversed switch.
    pub(crate) fn subwavelength_setup_sample(&mut self, switches: usize) -> SubwlSetupSample {
        let session = self.ems.latency(EmsCommand::OtnSession, &mut self.rng);
        let xcs = (0..switches.max(1))
            .map(|_| self.ems.latency(EmsCommand::OtnXconnect, &mut self.rng))
            .collect();
        SubwlSetupSample { session, xcs }
    }

    /// Sub-wavelength teardown: session + cross-connect removal.
    pub(crate) fn subwavelength_teardown_sample(&mut self) -> SubwlTeardownSample {
        let session = self.ems.latency(EmsCommand::OtnSession, &mut self.rng);
        let xc = self
            .ems
            .latency(EmsCommand::OtnXconnectRemove, &mut self.rng);
        SubwlTeardownSample { session, xc }
    }

    // ── span instrumentation ────────────────────────────────────────

    /// Open a workflow root span at `start` and index it under
    /// `(conn, kind)` so the matching `WorkflowDone` event closes it.
    /// Returns [`SpanId::INVALID`] (a no-op id) when recording is off.
    pub(crate) fn open_workflow_span(
        &mut self,
        conn: ConnectionId,
        kind: WorkflowKind,
        start: SimTime,
        name: &'static str,
    ) -> SpanId {
        if !self.spans.is_enabled() {
            return SpanId::INVALID;
        }
        let root = self.spans.open(start, "conn", name, None);
        self.spans.attr_u64(root, "conn", u64::from(conn.raw()));
        if root.is_valid() {
            self.workflow_spans.insert((conn, kind), root);
        }
        root
    }

    /// Close the root span a `WorkflowDone { conn, kind }` event belongs
    /// to, if one is open.
    pub(crate) fn close_workflow_span(&mut self, conn: ConnectionId, kind: WorkflowKind) {
        if let Some(root) = self.workflow_spans.remove(&(conn, kind)) {
            let now = self.now();
            self.spans.close(root, now);
        }
    }

    /// Lay a setup workflow's phase and device-operation spans out under
    /// `root`, starting at `t0`. Phases are sequential, each parallel
    /// command group occupying its max sampled duration — the exact
    /// arithmetic of [`SetupSample::total`] — so the phase spans tile
    /// `[t0, t0 + total]` and per-phase sums reproduce the end-to-end
    /// latency the controller reports. Each phase carries the time it
    /// spent queued behind earlier commands (`queue_wait_ns`); device
    /// operations under a phase start when the phase starts and show
    /// their individual sampled execution times.
    pub(crate) fn emit_setup_spans(&mut self, root: SpanId, t0: SimTime, s: &SetupSample) {
        if !self.spans.is_enabled() || !root.is_valid() {
            return;
        }
        let hops = s.roadm.len().saturating_sub(1).max(1);
        let mut t = t0;
        let phase = |spans: &mut SpanRecorder, t: SimTime, d: SimDuration, name| {
            let ph = spans.record(t, t + d, "phase", name, Some(root));
            spans.attr_u64(ph, "queue_wait_ns", t.since(t0).as_nanos());
            ph
        };
        // EMS provisioning session (serial bookkeeping).
        phase(&mut self.spans, t, s.session, "phase.session");
        t += s.session;
        // Client-side FXC pair, in parallel.
        let ph = phase(&mut self.spans, t, s.fxc_max(), "phase.fxc");
        for (i, d) in s.fxc.iter().enumerate() {
            let op = self.spans.record(
                t,
                t + *d,
                "device",
                EmsCommand::FxcSwitch.span_name(),
                Some(ph),
            );
            self.spans.attr_u64(op, "end", i as u64);
        }
        t += s.fxc_max();
        // Per-node ROADM/WSS configuration, in parallel across nodes.
        let ph = phase(&mut self.spans, t, s.roadm_max(), "phase.roadm");
        for (i, d) in s.roadm.iter().enumerate() {
            let op = self.spans.record(
                t,
                t + *d,
                "device",
                EmsCommand::RoadmConfigure.span_name(),
                Some(ph),
            );
            self.spans.attr_u64(op, "node", i as u64);
        }
        t += s.roadm_max();
        // Transponder laser tunes at both ends, in parallel.
        let ph = phase(&mut self.spans, t, s.tune_max(), "phase.tune");
        for (i, d) in s.tune.iter().enumerate() {
            let op = self.spans.record(
                t,
                t + *d,
                "device",
                EmsCommand::OtTune.span_name(),
                Some(ph),
            );
            self.spans.attr_u64(op, "end", i as u64);
        }
        t += s.tune_max();
        // End-to-end validation (serial).
        phase(&mut self.spans, t, s.validate, "phase.validate");
        t += s.validate;
        // Power equalization: per-iteration convergence rounds, each
        // measuring and adjusting every hop (see photonic::power).
        let ph = phase(&mut self.spans, t, s.equalize, "phase.equalize");
        let mut it_t = t;
        for (i, it_d) in self
            .cfg
            .equalization
            .iteration_splits(hops, s.equalize)
            .iter()
            .enumerate()
        {
            let it = self
                .spans
                .record(it_t, it_t + *it_d, "device", "equalize.iter", Some(ph));
            self.spans.attr_u64(it, "iter", i as u64);
            let mut hop_t = it_t;
            for (h, hop_d) in photonic::power::split_even(*it_d, hops).iter().enumerate() {
                let op =
                    self.spans
                        .record(hop_t, hop_t + *hop_d, "device", "equalize.hop", Some(it));
                self.spans.attr_u64(op, "hop", h as u64);
                hop_t += *hop_d;
            }
            it_t += *it_d;
        }
    }

    /// Teardown counterpart of [`Self::emit_setup_spans`]: session →
    /// (WSS deconfigure ∥ laser release) → FXC, tiling `[t0, t0+total]`.
    pub(crate) fn emit_teardown_spans(&mut self, root: SpanId, t0: SimTime, s: &TeardownSample) {
        if !self.spans.is_enabled() || !root.is_valid() {
            return;
        }
        let mut t = t0;
        let ph = self
            .spans
            .record(t, t + s.session, "phase", "phase.session", Some(root));
        self.spans.attr_u64(ph, "queue_wait_ns", 0);
        t += s.session;
        let ph = self.spans.record(
            t,
            t + s.deconf_max(),
            "phase",
            "phase.deconfigure",
            Some(root),
        );
        self.spans
            .attr_u64(ph, "queue_wait_ns", t.since(t0).as_nanos());
        self.spans.record(
            t,
            t + s.roadm_deconf,
            "device",
            EmsCommand::RoadmDeconfigure.span_name(),
            Some(ph),
        );
        self.spans.record(
            t,
            t + s.ot_release,
            "device",
            EmsCommand::OtRelease.span_name(),
            Some(ph),
        );
        t += s.deconf_max();
        let ph = self
            .spans
            .record(t, t + s.fxc, "phase", "phase.fxc", Some(root));
        self.spans
            .attr_u64(ph, "queue_wait_ns", t.since(t0).as_nanos());
        self.spans.record(
            t,
            t + s.fxc,
            "device",
            EmsCommand::FxcSwitch.span_name(),
            Some(ph),
        );
    }

    /// Sub-wavelength setup spans: OTN session → parallel electronic
    /// cross-connects, one per traversed switch.
    pub(crate) fn emit_subwl_setup_spans(
        &mut self,
        root: SpanId,
        t0: SimTime,
        s: &SubwlSetupSample,
    ) {
        if !self.spans.is_enabled() || !root.is_valid() {
            return;
        }
        self.spans
            .record(t0, t0 + s.session, "phase", "phase.otn_session", Some(root));
        let t = t0 + s.session;
        let ph = self
            .spans
            .record(t, t + s.xc_max(), "phase", "phase.xconnect", Some(root));
        self.spans
            .attr_u64(ph, "queue_wait_ns", s.session.as_nanos());
        for (i, d) in s.xcs.iter().enumerate() {
            let op = self.spans.record(
                t,
                t + *d,
                "device",
                EmsCommand::OtnXconnect.span_name(),
                Some(ph),
            );
            self.spans.attr_u64(op, "switch", i as u64);
        }
    }

    /// Sub-wavelength teardown spans: OTN session → cross-connect removal.
    pub(crate) fn emit_subwl_teardown_spans(
        &mut self,
        root: SpanId,
        t0: SimTime,
        s: &SubwlTeardownSample,
    ) {
        if !self.spans.is_enabled() || !root.is_valid() {
            return;
        }
        self.spans
            .record(t0, t0 + s.session, "phase", "phase.otn_session", Some(root));
        let t = t0 + s.session;
        let ph = self
            .spans
            .record(t, t + s.xc, "phase", "phase.xconnect", Some(root));
        self.spans.record(
            t,
            t + s.xc,
            "device",
            EmsCommand::OtnXconnectRemove.span_name(),
            Some(ph),
        );
    }

    // ── plan claim / release ────────────────────────────────────────

    /// Record §4 power-transient exposure for an add/remove event on
    /// every fiber of `path`, unless staged ramps suppress it.
    pub(crate) fn account_transients(&mut self, path: &[FiberId], adding: bool) {
        if self.cfg.staged_power_ramp {
            return;
        }
        let now = self.now();
        for f in path {
            // Survivors: channels already lit on the fiber, excluding the
            // one being added/removed (on add it is not yet counted; on
            // remove it still is).
            let lit = self.net.lit_lambdas_on_fiber(*f);
            let survivors = if adding { lit } else { lit.saturating_sub(1) };
            if self.cfg.transients.disturbs(survivors) {
                self.metrics
                    .counter("transient.disturbed_channels")
                    .add(survivors as u64);
                self.metrics.counter("transient.events").incr();
                self.trace.emit(
                    now,
                    "power",
                    format!(
                        "{} on {f}: {:.2} dB transient across {survivors} survivors",
                        if adding { "add" } else { "remove" },
                        self.cfg.transients.depth_db(survivors)
                    ),
                );
            }
        }
    }

    /// Apply a wavelength plan to the inventory: tune OTs, claim regens,
    /// configure add/drop at the ends and express at intermediates.
    pub(crate) fn claim_plan(&mut self, plan: &WavelengthPlan) {
        self.account_transients(&plan.path, true);
        let from = self.net.transponder(plan.ot_src).location;
        let to = self.net.transponder(plan.ot_dst).location;
        self.fxc_patch(from, plan.ot_src);
        self.fxc_patch(to, plan.ot_dst);
        self.net
            .transponder_mut(plan.ot_src)
            .start_tuning(plan.lambda);
        self.net
            .transponder_mut(plan.ot_dst)
            .start_tuning(plan.lambda);
        for r in &plan.regens {
            self.net.regen_mut(*r).claim();
        }
        let nodes = self.net.node_sequence(from, &plan.path);
        // Source add/drop.
        let (src_node, src_port) = self.net.ot_port(plan.ot_src);
        debug_assert_eq!(src_node, nodes[0]);
        let d0 = self.degree_for(nodes[0], plan.path[0]);
        self.net
            .roadm_mut(nodes[0])
            .connect_add_drop(src_port, plan.lambda, d0)
            .expect("planner verified λ free at source");
        // Intermediate expresses.
        #[allow(clippy::needless_range_loop)] // i indexes both nodes and path, offset
        for i in 1..nodes.len() - 1 {
            let din = self.degree_for(nodes[i], plan.path[i - 1]);
            let dout = self.degree_for(nodes[i], plan.path[i]);
            self.net
                .roadm_mut(nodes[i])
                .connect_express(plan.lambda, din, dout)
                .expect("planner verified λ free at intermediate");
        }
        // Destination add/drop.
        let (dst_node, dst_port) = self.net.ot_port(plan.ot_dst);
        debug_assert_eq!(dst_node, *nodes.last().unwrap());
        let dl = self.degree_for(*nodes.last().unwrap(), *plan.path.last().unwrap());
        self.net
            .roadm_mut(*nodes.last().unwrap())
            .connect_add_drop(dst_port, plan.lambda, dl)
            .expect("planner verified λ free at destination");
    }

    /// Undo everything [`Self::claim_plan`] did.
    pub(crate) fn release_plan(&mut self, plan: &WavelengthPlan) {
        self.account_transients(&plan.path, false);
        let from = self.net.transponder(plan.ot_src).location;
        let to = self.net.transponder(plan.ot_dst).location;
        self.fxc_unpatch(from, plan.ot_src);
        self.fxc_unpatch(to, plan.ot_dst);
        let nodes = self.net.node_sequence(from, &plan.path);
        let (_, src_port) = self.net.ot_port(plan.ot_src);
        self.net
            .roadm_mut(nodes[0])
            .disconnect_add_drop(src_port)
            .expect("claimed plan must be configured");
        #[allow(clippy::needless_range_loop)] // i indexes both nodes and path, offset
        for i in 1..nodes.len() - 1 {
            let din = self.degree_for(nodes[i], plan.path[i - 1]);
            let dout = self.degree_for(nodes[i], plan.path[i]);
            self.net
                .roadm_mut(nodes[i])
                .disconnect_express(plan.lambda, din, dout)
                .expect("claimed plan must be configured");
        }
        let (_, dst_port) = self.net.ot_port(plan.ot_dst);
        self.net
            .roadm_mut(*nodes.last().unwrap())
            .disconnect_add_drop(dst_port)
            .expect("claimed plan must be configured");
        self.net.transponder_mut(plan.ot_src).release();
        self.net.transponder_mut(plan.ot_dst).release();
        for r in &plan.regens {
            self.net.regen_mut(*r).release();
        }
    }

    /// The client-side FXC at a PoP, created on first use.
    pub fn fxc_at(&mut self, node: RoadmId) -> photonic::FxcId {
        if let Some(id) = self.fxc_at.get(&node) {
            return *id;
        }
        let id = self.net.add_fxc();
        self.fxc_at.insert(node, id);
        id
    }

    /// Patch a service's access fiber through the node's FXC to an OT's
    /// client port (§2.2: the FXC steers the customer signal to an OT for
    /// wavelength service, enabling "dynamic sharing of transponders").
    pub(crate) fn fxc_patch(&mut self, node: RoadmId, ot: photonic::TransponderId) {
        let fxc = self.fxc_at(node);
        let f = self.net.fxc_mut(fxc);
        let ot_label = format!("ot:{ot}");
        let ot_port = f
            .port_by_label(&ot_label)
            .unwrap_or_else(|| f.add_port(ot_label));
        // Reuse a previously cabled service position when free, else add
        // a new patch-panel position.
        let svc_label = format!("svc:{ot}");
        let svc_port = f
            .port_by_label(&svc_label)
            .filter(|p| f.is_free(*p))
            .unwrap_or_else(|| f.add_port(svc_label));
        f.connect(svc_port, ot_port)
            .expect("service port and pooled OT port are free");
    }

    /// Undo [`Self::fxc_patch`].
    pub(crate) fn fxc_unpatch(&mut self, node: RoadmId, ot: photonic::TransponderId) {
        let fxc = self.fxc_at(node);
        let f = self.net.fxc_mut(fxc);
        if let Some(port) = f.port_by_label(&format!("ot:{ot}")) {
            let _ = f.disconnect(port);
        }
    }

    pub(crate) fn degree_for(&self, node: RoadmId, fiber: FiberId) -> DegreeId {
        self.net
            .roadm(node)
            .degree_to(fiber)
            .expect("path fiber must touch node")
    }

    pub(crate) fn fresh_conn_id(&mut self) -> ConnectionId {
        let id = ConnectionId::new(self.next_conn);
        self.next_conn += 1;
        id
    }

    /// Schedule a connection workflow's completion event and open it in
    /// the in-flight EMS ledger — the single gate every device workflow
    /// passes through, so recovery knows exactly what was outstanding.
    pub(crate) fn schedule_workflow(
        &mut self,
        dur: SimDuration,
        conn: ConnectionId,
        kind: WorkflowKind,
    ) {
        self.workflows.begin(conn.raw(), kind.label());
        self.sched
            .schedule_after(dur, Event::WorkflowDone { conn, kind });
    }

    /// [`Self::schedule_workflow`] for trunk workflows.
    pub(crate) fn schedule_trunk_workflow(&mut self, dur: SimDuration, trunk: TrunkId, ev: Event) {
        let label = match ev {
            Event::TrunkRestored { .. } => "trunk_restore",
            _ => "trunk_provision",
        };
        self.workflows.begin(trunk.raw(), label);
        self.sched.schedule_after(dur, ev);
    }

    // ── event dispatch ──────────────────────────────────────────────

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::WorkflowDone { conn, kind } => self.on_workflow_done(conn, kind),
            Event::TrunkReady { trunk } => self.on_trunk_ready(trunk),
            Event::TrunkRestored { trunk } => self.on_trunk_restored(trunk),
            Event::AlarmDelivered(alarm) => self.on_alarm(alarm),
            Event::FiberRepaired { fiber } => self.on_fiber_repaired(fiber),
            Event::ReservationStart { reservation } => self.on_reservation_start(reservation),
            Event::ReservationEnd { reservation } => self.on_reservation_end(reservation),
        }
    }

    fn on_workflow_done(&mut self, id: ConnectionId, kind: WorkflowKind) {
        // Close the workflow's root span before any state checks so the
        // span stream stays well-formed even when a teardown or failure
        // raced the workflow and the completion is a no-op.
        self.close_workflow_span(id, kind);
        self.workflows.complete(id.raw(), kind.label());
        match kind {
            WorkflowKind::Setup => {
                let now = self.now();
                // A completion for a connection the controller no longer
                // knows is stale — tolerated (not a panic) so a corrupt or
                // hand-edited log surfaces as a recovery error upstream
                // instead of tearing the process down.
                let Some(conn) = self.conns.get_mut(&id) else {
                    self.metrics.counter("workflow.orphaned").incr();
                    self.trace
                        .emit(self.sched.now(), "conn", format!("{id} orphan setup done"));
                    return;
                };
                // A teardown or failure may have raced the setup; only a
                // still-provisioning connection activates.
                if conn.state != ConnState::Provisioning {
                    return;
                }
                conn.transition(ConnState::Active);
                conn.activated_at = Some(now);
                let setup_secs = now.saturating_since(conn.requested_at).as_secs_f64();
                let to_tune: Vec<photonic::TransponderId> = match &conn.resources {
                    Some(Resources::Wavelength(plan)) => vec![plan.ot_src, plan.ot_dst],
                    Some(Resources::Protected {
                        working, protect, ..
                    }) => vec![
                        working.ot_src,
                        working.ot_dst,
                        protect.ot_src,
                        protect.ot_dst,
                    ],
                    _ => Vec::new(),
                };
                for ot in to_tune {
                    self.net.transponder_mut(ot).tuning_complete();
                }
                self.metrics.histogram("setup.secs").record(setup_secs);
                self.metrics.counter("setup.completed").incr();
                self.trace
                    .emit(now, "conn", format!("{id} active after {setup_secs:.2}s"));
            }
            WorkflowKind::Teardown => {
                let now = self.now();
                let Some(conn) = self.conns.get_mut(&id) else {
                    self.metrics.counter("workflow.orphaned").incr();
                    self.trace
                        .emit(now, "conn", format!("{id} orphan teardown done"));
                    return;
                };
                if conn.state != ConnState::TearingDown {
                    return;
                }
                conn.transition(ConnState::Released);
                let rate = conn.kind.rate();
                let customer = conn.customer;
                let resources = conn.resources.take();
                match resources {
                    Some(Resources::Wavelength(plan)) => self.release_plan(&plan),
                    Some(Resources::SubWavelength(route)) => self.release_subwavelength(&route),
                    Some(Resources::Protected {
                        working, protect, ..
                    }) => {
                        self.release_plan(&working);
                        self.release_plan(&protect);
                    }
                    None => {}
                }
                self.tenants.release(customer, rate);
                self.metrics.counter("teardown.completed").incr();
                self.trace.emit(now, "conn", format!("{id} released"));
            }
            WorkflowKind::Restore => self.on_restore_done(id),
            WorkflowKind::Bridge => self.on_bridge_done(id),
            WorkflowKind::Roll => self.on_roll_done(id),
            WorkflowKind::ProtectionSwitch => self.on_protection_switch(id),
        }
    }

    /// Release the cross-connects of a sub-wavelength route.
    pub(crate) fn release_subwavelength(&mut self, route: &crate::connection::SubWavelengthRoute) {
        for (sw, xc) in &route.xcs {
            // The xc may already be gone if its trunk was torn down.
            let _ = self.switches[*sw].disconnect(*xc);
        }
    }

    /// Internal: used by otn_service teardown paths.
    pub(crate) fn switch_disconnect(&mut self, sw: usize, xc: XcId) {
        let _ = self.switches[sw].disconnect(xc);
    }

    /// `(total, in use)` regen counts — inventory reporting.
    pub fn regen_stats(&self) -> (usize, usize) {
        let total = self.net.regen_count();
        let used = self
            .net
            .regen_ids()
            .filter(|r| self.net.regen(*r).in_use)
            .count();
        (total, used)
    }

    // ── durable-state capture ───────────────────────────────────────

    /// A deterministic deep copy of this controller: the snapshot
    /// primitive. Persistent state — inventory, scheduler, RNG, tenants,
    /// traces, metrics — is cloned field by field; *derived* state is
    /// reset: the journal detaches (a replica journals independently),
    /// the wall-clock perf recorder starts fresh (host time is not
    /// state), and the path engine restarts cold (its route cache is
    /// proven outcome-neutral by `tests/determinism.rs`).
    pub fn fork(&self) -> Controller {
        Controller {
            net: self.net.clone(),
            switches: self.switches.clone(),
            switch_at: self.switch_at.clone(),
            trunks: self.trunks.clone(),
            tenants: self.tenants.clone(),
            cfg: self.cfg.clone(),
            ems: self.ems.clone(),
            rng: self.rng.clone(),
            sched: self.sched.clone(),
            conns: self.conns.clone(),
            next_conn: self.next_conn,
            next_trunk: self.next_trunk,
            restoration_queue: self.restoration_queue.clone(),
            restorations_in_flight: self.restorations_in_flight,
            down_fibers: self.down_fibers.clone(),
            pending_maintenance: self.pending_maintenance.clone(),
            reservations: self.reservations.clone(),
            booking_caps: self.booking_caps.clone(),
            fxc_at: self.fxc_at.clone(),
            trace: self.trace.clone(),
            spans: self.spans.clone(),
            workflow_spans: self.workflow_spans.clone(),
            trunk_spans: self.trunk_spans.clone(),
            restoration_enqueued_at: self.restoration_enqueued_at.clone(),
            metrics: self.metrics.clone(),
            noc: self.noc.clone(),
            engine: self.engine.fresh_like(),
            perf: LatencyRecorder::new(),
            journal: None,
            journal_depth: 0,
            workflows: self.workflows.clone(),
        }
    }

    /// A canonical multi-line rendering of every byte of *persistent*
    /// controller state — the byte-identity oracle behind the durable
    /// control plane: recovery is correct iff the recovered replica's
    /// digest equals the primary's.
    ///
    /// Includes the clock, event counter, id counters, the full RNG
    /// state, the scheduler's pending events in delivery order, the
    /// entire inventory (network, switches, trunks, connections), the
    /// tenant table, calendar, maintenance and restoration state, the
    /// workflow ledger, metrics, and a checksum of the trace. Excludes
    /// observational or host-bound layers that are proven
    /// outcome-neutral: the NOC (its scrape values depend on event-loop
    /// boundaries replay need not reproduce), the span recorder, the
    /// wall-clock perf recorder, the path-engine cache, and the journal
    /// itself.
    pub fn state_digest(&self) -> String {
        let mut out = String::new();
        self.write_state_digest(&mut out)
            .expect("String never fails fmt::Write");
        out
    }

    /// CRC-32C of [`Controller::state_digest`], computed by streaming the
    /// digest straight through a [`simcore::CrcWriter`] — the hot path
    /// snapshots and sync barriers use. Never materializes the (multi-
    /// megabyte at scale) string; byte-for-byte equal to
    /// `crc32c(state_digest().as_bytes())` by construction, asserted by
    /// `streaming_digest_crc_matches_string`.
    pub fn state_digest_crc(&self) -> u32 {
        let mut w = simcore::CrcWriter::new();
        self.write_state_digest(&mut w)
            .expect("CrcWriter never fails fmt::Write");
        w.finish()
    }

    /// Stream the canonical digest rendering into any [`std::fmt::Write`]
    /// sink. [`Controller::state_digest`] (the golden/debug string) and
    /// [`Controller::state_digest_crc`] (the streaming checksum) are both
    /// thin wrappers over this single source of truth, so they cannot
    /// drift apart.
    pub fn write_state_digest<W: std::fmt::Write>(&self, out: &mut W) -> std::fmt::Result {
        writeln!(out, "now={}", self.sched.now().as_nanos())?;
        writeln!(out, "events={}", self.sched.events_delivered())?;
        writeln!(out, "next_conn={}", self.next_conn)?;
        writeln!(out, "next_trunk={}", self.next_trunk)?;
        writeln!(out, "rng={:?}", self.rng.state_words())?;
        writeln!(out, "pending:")?;
        for (at, seq, ev) in self.sched.pending_entries() {
            writeln!(out, "  {} #{seq} {ev:?}", at.as_nanos())?;
        }
        writeln!(out, "tenants={:?}", self.tenants)?;
        writeln!(out, "conns={:?}", self.conns)?;
        writeln!(out, "trunks={:?}", self.trunks)?;
        writeln!(out, "switch_at={:?}", self.switch_at)?;
        writeln!(out, "switches={:?}", self.switches)?;
        writeln!(out, "reservations={:?}", self.reservations)?;
        writeln!(out, "booking_caps={:?}", self.booking_caps)?;
        writeln!(out, "down_fibers={:?}", self.down_fibers)?;
        writeln!(out, "pending_maint={:?}", self.pending_maintenance)?;
        writeln!(out, "restore_q={:?}", self.restoration_queue)?;
        writeln!(out, "restore_inflight={}", self.restorations_in_flight)?;
        writeln!(out, "fxc_at={:?}", self.fxc_at)?;
        writeln!(out, "{}", self.workflows.dump())?;
        writeln!(out, "metrics={:?}", self.metrics)?;
        let trace_dump = self.trace.dump();
        writeln!(
            out,
            "trace lines={} crc={:#010x}",
            trace_dump.lines().count(),
            simcore::crc32c(trace_dump.as_bytes())
        )?;
        writeln!(out, "net={:?}", self.net)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonic::Wavelength;

    fn testbed_controller(jitter: bool) -> (Controller, photonic::TestbedIds, CustomerId) {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut cfg = ControllerConfig::default();
        if !jitter {
            cfg.ems = EmsProfile::calibrated_deterministic();
            cfg.equalization = EqualizationModel::calibrated_deterministic();
        }
        let mut ctl = Controller::new(net, cfg);
        let csp = ctl
            .tenants
            .register("acme-cloud", simcore::DataRate::from_gbps(100));
        (ctl, ids, csp)
    }

    #[test]
    fn one_hop_setup_matches_table2_row1() {
        let (mut ctl, ids, csp) = testbed_controller(false);
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Provisioning);
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Active);
        let elapsed = conn
            .activated_at
            .unwrap()
            .since(conn.requested_at)
            .as_secs_f64();
        assert!((elapsed - 62.48).abs() < 0.01, "elapsed={elapsed}");
    }

    #[test]
    fn setup_claims_and_activates_resources() {
        let (mut ctl, ids, csp) = testbed_controller(false);
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        // λ0 occupied on the direct fiber during provisioning.
        assert!(!ctl.net.lambda_free_on_fiber(ids.f_i_iv, Wavelength(0)));
        ctl.run_until_idle();
        let plan = ctl
            .connection(id)
            .unwrap()
            .wavelength_plan()
            .unwrap()
            .clone();
        assert_eq!(
            ctl.net.transponder(plan.ot_src).wavelength(),
            Some(Wavelength(0))
        );
    }

    #[test]
    fn teardown_frees_everything() {
        let (mut ctl, ids, csp) = testbed_controller(false);
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let t_active = ctl.now();
        ctl.request_teardown(id).unwrap();
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Released);
        assert!(conn.resources.is_none());
        assert!(ctl.net.lambda_free_on_fiber(ids.f_i_iv, Wavelength(0)));
        assert_eq!(ctl.net.idle_ots_at(ids.i, LineRate::Gbps10).len(), 4);
        assert_eq!(
            ctl.tenants.get(csp).unwrap().in_use,
            simcore::DataRate::ZERO
        );
        // Teardown ≈ 9–10 s per the paper.
        let teardown = ctl.now().since(t_active).as_secs_f64();
        assert!((8.0..=11.0).contains(&teardown), "teardown={teardown}");
    }

    /// Sum the durations of `root`'s direct `phase` children.
    fn phase_sum(spans: &[simcore::Span], root: simcore::SpanId) -> SimDuration {
        spans
            .iter()
            .filter(|s| s.parent == Some(root) && s.category == "phase")
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration().unwrap())
    }

    #[test]
    fn setup_spans_tile_the_workflow_exactly() {
        let (mut ctl, ids, csp) = testbed_controller(true); // jitter on
        ctl.spans.set_enabled(true);
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.request_teardown(id).unwrap();
        ctl.run_until_idle();
        simcore::span::validate(ctl.spans.spans()).unwrap();
        let conn = ctl.connection(id).unwrap();

        let setup_root = ctl
            .spans
            .spans()
            .iter()
            .find(|s| s.name == "conn.setup")
            .expect("setup root span");
        assert_eq!(setup_root.start, conn.requested_at);
        assert_eq!(setup_root.end, conn.activated_at);
        assert_eq!(setup_root.attr_u64("hops"), Some(1));
        // Phases tile the root: their sum IS the end-to-end setup time.
        assert_eq!(
            phase_sum(ctl.spans.spans(), setup_root.id),
            setup_root.duration().unwrap()
        );
        // Device operations nest under phases and include the dominant
        // laser tune pair.
        assert_eq!(
            ctl.spans
                .spans()
                .iter()
                .filter(|s| s.name == "laser.tune")
                .count(),
            2
        );

        let td_root = ctl
            .spans
            .spans()
            .iter()
            .find(|s| s.name == "conn.teardown")
            .expect("teardown root span");
        assert_eq!(
            phase_sum(ctl.spans.spans(), td_root.id),
            td_root.duration().unwrap()
        );
        // Planning produced an instant span too.
        assert!(ctl.spans.spans().iter().any(|s| s.name == "rwa.plan"));
    }

    #[test]
    fn spans_disabled_by_default_and_cost_nothing() {
        let (mut ctl, ids, csp) = testbed_controller(false);
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.request_teardown(id).unwrap();
        ctl.run_until_idle();
        assert!(ctl.spans.is_empty());
        assert_eq!(ctl.spans.dropped(), 0);
        // The disabled recorder never allocates its buffer.
        assert_eq!(ctl.spans.buffered_capacity(), 0);
    }

    #[test]
    fn restoration_spans_attribute_queue_wait() {
        let (net, ids) = PhotonicNetwork::testbed(8);
        let cfg = ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        };
        let mut ctl = Controller::new(net, cfg);
        ctl.spans.set_enabled(true);
        let csp = ctl
            .tenants
            .register("acme", simcore::DataRate::from_gbps(100));
        let a = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        let b = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.run_until_idle();
        assert_eq!(ctl.connection(a).unwrap().state, ConnState::Active);
        assert_eq!(ctl.connection(b).unwrap().state, ConnState::Active);
        simcore::span::validate(ctl.spans.spans()).unwrap();
        let restores: Vec<&simcore::Span> = ctl
            .spans
            .spans()
            .iter()
            .filter(|s| s.name == "conn.restore")
            .collect();
        assert_eq!(restores.len(), 2);
        // EMS serialization: the second restoration's root includes a
        // genuine queue-wait phase at least one whole setup long.
        let waits: Vec<SimDuration> = restores
            .iter()
            .map(|r| {
                ctl.spans
                    .spans()
                    .iter()
                    .filter(|s| s.parent == Some(r.id) && s.name == "restore.queue_wait")
                    .fold(SimDuration::ZERO, |acc, s| acc + s.duration().unwrap())
            })
            .collect();
        let longest = waits.iter().copied().max().unwrap();
        assert!(
            longest >= SimDuration::from_secs(60),
            "serialized restoration must wait a full setup, waited {longest}"
        );
        // Queue wait + phases still tile each root exactly.
        for r in &restores {
            let children: SimDuration = ctl
                .spans
                .spans()
                .iter()
                .filter(|s| s.parent == Some(r.id) && s.category == "phase")
                .fold(SimDuration::ZERO, |acc, s| acc + s.duration().unwrap());
            assert_eq!(children, r.duration().unwrap());
        }
    }

    #[test]
    fn concurrent_requests_get_different_lambdas() {
        let (mut ctl, ids, csp) = testbed_controller(false);
        let a = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        let b = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let la = ctl.connection(a).unwrap().wavelength_plan().unwrap().lambda;
        let lb = ctl.connection(b).unwrap().wavelength_plan().unwrap().lambda;
        assert_ne!(la, lb, "no double-allocation under concurrent setup");
    }

    #[test]
    fn quota_admission_blocks_and_releases_nothing() {
        let (mut ctl, ids, _) = testbed_controller(false);
        let small = ctl
            .tenants
            .register("small-fry", simcore::DataRate::from_gbps(5));
        let err = ctl
            .request_wavelength(small, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap_err();
        assert!(matches!(err, RequestError::Admission(_)));
        assert_eq!(
            ctl.tenants.get(small).unwrap().in_use,
            simcore::DataRate::ZERO
        );
        assert_eq!(ctl.net.idle_ots_at(ids.i, LineRate::Gbps10).len(), 4);
    }

    #[test]
    fn rwa_failure_refunds_quota() {
        let (net, ids) = PhotonicNetwork::testbed(0); // no OTs anywhere
        let mut ctl = Controller::new(net, ControllerConfig::default());
        let csp = ctl
            .tenants
            .register("acme", simcore::DataRate::from_gbps(100));
        let err = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap_err();
        assert!(matches!(err, RequestError::Rwa(_)));
        assert_eq!(
            ctl.tenants.get(csp).unwrap().in_use,
            simcore::DataRate::ZERO
        );
    }

    #[test]
    fn teardown_during_provisioning_wins() {
        let (mut ctl, ids, csp) = testbed_controller(false);
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        // Tear down 10 s in, long before setup completes.
        ctl.run_until(SimTime::from_secs(10));
        ctl.request_teardown(id).unwrap();
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Released);
        assert!(ctl.net.lambda_free_on_fiber(ids.f_i_iv, Wavelength(0)));
        // OT pool restored (release() from Tuning is legal).
        assert_eq!(ctl.net.idle_ots_at(ids.i, LineRate::Gbps10).len(), 4);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let (mut ctl, _, _) = testbed_controller(false);
        ctl.run_until(SimTime::from_secs(100));
        assert_eq!(ctl.now(), SimTime::from_secs(100));
    }

    #[test]
    fn fxc_patches_follow_connection_lifecycle() {
        let (mut ctl, ids, csp) = testbed_controller(false);
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let ot = ctl
            .connection(id)
            .unwrap()
            .wavelength_plan()
            .unwrap()
            .ot_src;
        let fxc = ctl.fxc_at(ids.i);
        let f = ctl.net.fxc(fxc);
        let ot_port = f.port_by_label(&format!("ot:{ot}")).unwrap();
        assert!(f.peer(ot_port).is_some(), "OT patched through the FXC");
        assert_eq!(f.connections(), 1);
        ctl.request_teardown(id).unwrap();
        ctl.run_until_idle();
        let f = ctl.net.fxc(fxc);
        let ot_port = f.port_by_label(&format!("ot:{ot}")).unwrap();
        assert!(f.peer(ot_port).is_none(), "unpatched at teardown");
        // Re-ordering reuses the same panel positions (no port leak).
        let before = f.port_count();
        let id2 = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.request_teardown(id2).unwrap();
        ctl.run_until_idle();
        assert_eq!(ctl.net.fxc(fxc).port_count(), before);
    }

    #[test]
    fn metrics_record_setups() {
        let (mut ctl, ids, csp) = testbed_controller(true);
        for _ in 0..3 {
            let id = ctl
                .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                .unwrap();
            ctl.run_until_idle();
            ctl.request_teardown(id).unwrap();
            ctl.run_until_idle();
        }
        assert_eq!(ctl.metrics.counter("setup.completed").get(), 3);
        let h = ctl.metrics.get_histogram("setup.secs").unwrap();
        assert_eq!(h.count(), 3);
        assert!((55.0..75.0).contains(&h.mean()), "mean={}", h.mean());
    }
}
