//! The active-probing measurement plane (`DESIGN.md` §15).
//!
//! GRIPhoN's northbound interface assumes the tenant *knows* the
//! bandwidth it is ordering. Real inter-DC tenants don't: the residual
//! capacity of a shared path moves with everyone else's traffic. This
//! module closes that gap inside the simulation with the classic
//! active-measurement loop:
//!
//! 1. [`CrossTraffic`] — a deterministic competing-load engine: stable
//!    mgen-style UDP rate profiles ([`CrossTraffic::stationary`]),
//!    bursty TCP-like on/off injections
//!    ([`CrossTraffic::with_bursts`]), diurnal drift
//!    ([`CrossTraffic::diurnal`]) and an adversarial square wave
//!    ([`CrossTraffic::square`]). All piecewise-constant, all driven off
//!    [`SimRng`] streams, so the fluid ground truth is known exactly.
//! 2. [`Prober`] — per-path probe trains on a [`simcore::Scheduler`]
//!    cadence, pushed through an exact-integer [`FluidQueue`] bottleneck,
//!    with probe-gap available-bandwidth estimation (the Spruce model:
//!    back-to-back probes at line rate keep the bottleneck busy, so the
//!    output gap dilates by exactly the cross-traffic share).
//! 3. Observability: every probe train is a root span scored by a
//!    [`TailSampler`], every estimate lands in labeled metric families,
//!    and each histogram exemplar links back to a *retained* probe
//!    trace — the estimate → evidence loop of the PR 8 exemplar plane.
//!
//! The estimator itself is always on: its RNG draws and arithmetic are
//! part of simulation state, so policies built on it (the
//! estimation-aware BoD mode in `cloud::scheduler`) decide identically
//! whether or not the observability plane records anything. Only spans,
//! samplers and metric families are gated — that is the measurement
//! plane's observational-passivity invariant, asserted by
//! `repro measure` per cell.

use simcore::metrics::FamilyRegistry;
use simcore::{
    DataRate, DataSize, FluidQueue, Scheduler, SimDuration, SimRng, SimTime, SpanRecorder,
    TailSampleConfig, TailSampleStats, TailSampler,
};

/// Deterministic piecewise-constant cross traffic on a shared path.
///
/// The competing load the prober measures against. Kept sorted by start
/// time with the first step at `t = 0`; between steps the rate is
/// constant, which is what lets [`FluidQueue`] advance each segment with
/// one exact integer update.
#[derive(Debug, Clone)]
pub struct CrossTraffic {
    /// `(start, rate)` steps, sorted, deduplicated, first at `ZERO`.
    steps: Vec<(SimTime, DataRate)>,
}

impl CrossTraffic {
    /// A constant competing load.
    pub fn flat(rate: DataRate) -> CrossTraffic {
        CrossTraffic {
            steps: vec![(SimTime::ZERO, rate)],
        }
    }

    /// Build from raw steps: sorted by time, later duplicates win,
    /// consecutive equal rates merged. A missing step at `t = 0` is
    /// filled with rate zero.
    pub fn from_steps(mut steps: Vec<(SimTime, DataRate)>) -> CrossTraffic {
        steps.sort_by_key(|&(t, _)| t);
        let mut out: Vec<(SimTime, DataRate)> = Vec::with_capacity(steps.len() + 1);
        if steps.first().map(|&(t, _)| t) != Some(SimTime::ZERO) {
            out.push((SimTime::ZERO, DataRate::ZERO));
        }
        for (t, r) in steps {
            if out.last().map(|&(lt, _)| lt) == Some(t) {
                out.last_mut().expect("non-empty").1 = r;
            } else if out.last().map(|&(_, lr)| lr) != Some(r) {
                out.push((t, r));
            }
        }
        CrossTraffic { steps: out }
    }

    /// Stable mgen-style UDP load: every `interval` the rate is redrawn
    /// uniformly within `±jitter_frac` of `mean`. `jitter_frac = 0`
    /// degenerates to [`Self::flat`].
    pub fn stationary(
        seed: u64,
        mean: DataRate,
        jitter_frac: f64,
        interval: SimDuration,
        horizon: SimTime,
    ) -> CrossTraffic {
        assert!((0.0..1.0).contains(&jitter_frac), "jitter_frac in [0,1)");
        let mut rng = SimRng::new(seed).fork(0xC805);
        let mut steps = Vec::new();
        let mut t = SimTime::ZERO;
        while t < horizon {
            let f = 1.0 + jitter_frac * (2.0 * rng.f64() - 1.0);
            steps.push((t, DataRate::from_bps((mean.bps() as f64 * f) as u64)));
            t += interval;
        }
        CrossTraffic::from_steps(steps)
    }

    /// Overlay bursty TCP-like on/off injections: exponential off
    /// periods (mean `mean_off`) alternate with exponential on periods
    /// (mean `mean_on`) during which `burst` is *added* to the base
    /// load.
    pub fn with_bursts(
        self,
        seed: u64,
        burst: DataRate,
        mean_on: SimDuration,
        mean_off: SimDuration,
        horizon: SimTime,
    ) -> CrossTraffic {
        let mut rng = SimRng::new(seed).fork(0xB095);
        let mut bursts: Vec<(SimTime, SimTime)> = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_secs_f64(rng.exp(mean_off.as_secs_f64()));
            if t >= horizon {
                break;
            }
            let end = t + SimDuration::from_secs_f64(rng.exp(mean_on.as_secs_f64()));
            let end = end.min(horizon);
            bursts.push((t, end));
            t = end;
        }
        let in_burst = |at: SimTime| bursts.iter().any(|&(a, b)| a <= at && at < b);
        let mut boundaries: Vec<SimTime> = self.steps.iter().map(|&(t, _)| t).collect();
        for &(a, b) in &bursts {
            boundaries.push(a);
            boundaries.push(b);
        }
        boundaries.sort();
        boundaries.dedup();
        let steps = boundaries
            .into_iter()
            .map(|t| {
                let extra = if in_burst(t) { burst } else { DataRate::ZERO };
                (t, self.rate_at(t) + extra)
            })
            .collect();
        CrossTraffic::from_steps(steps)
    }

    /// Diurnal drift: `base + amplitude·sin(2πt/period + φ)` with a
    /// seed-drawn phase φ, sampled into steps every `interval`, clamped
    /// at zero.
    pub fn diurnal(
        seed: u64,
        base: DataRate,
        amplitude: DataRate,
        period: SimDuration,
        interval: SimDuration,
        horizon: SimTime,
    ) -> CrossTraffic {
        let mut rng = SimRng::new(seed).fork(0xD109);
        let phase = rng.f64() * std::f64::consts::TAU;
        let mut steps = Vec::new();
        let mut t = SimTime::ZERO;
        while t < horizon {
            let s = simcore::diurnal_sin(t.as_secs_f64(), period.as_secs_f64(), phase);
            let bps = base.bps() as f64 + amplitude.bps() as f64 * s;
            steps.push((t, DataRate::from_bps(bps.max(0.0) as u64)));
            t += interval;
        }
        CrossTraffic::from_steps(steps)
    }

    /// Adversarial square wave alternating `low` / `high` every
    /// `half_period`, built to alias against a probing cadence.
    pub fn square(
        low: DataRate,
        high: DataRate,
        half_period: SimDuration,
        horizon: SimTime,
    ) -> CrossTraffic {
        let mut steps = Vec::new();
        let mut t = SimTime::ZERO;
        let mut hi = false;
        while t < horizon {
            steps.push((t, if hi { high } else { low }));
            hi = !hi;
            t += half_period;
        }
        CrossTraffic::from_steps(steps)
    }

    /// The competing rate at `t`.
    pub fn rate_at(&self, t: SimTime) -> DataRate {
        let idx = self.steps.partition_point(|&(s, _)| s <= t);
        self.steps[idx - 1].1
    }

    /// The first step boundary strictly after `t`, if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        let idx = self.steps.partition_point(|&(s, _)| s <= t);
        self.steps.get(idx).map(|&(s, _)| s)
    }

    /// Exact mean rate over `[a, b)` (integral of the step function,
    /// integer bit accounting).
    pub fn mean_over(&self, a: SimTime, b: SimTime) -> DataRate {
        assert!(b > a, "mean_over of an empty interval");
        let mut bits: u128 = 0;
        let mut t = a;
        while t < b {
            let seg_end = match self.next_change_after(t) {
                Some(c) if c < b => c,
                _ => b,
            };
            bits += self.rate_at(t).bps() as u128 * seg_end.since(t).as_nanos() as u128;
            t = seg_end;
        }
        let bps = bits / b.since(a).as_nanos() as u128;
        DataRate::from_bps(u64::try_from(bps).expect("mean rate overflow"))
    }

    /// The largest step rate.
    pub fn peak(&self) -> DataRate {
        self.steps
            .iter()
            .map(|&(_, r)| r)
            .max()
            .unwrap_or(DataRate::ZERO)
    }
}

/// A probed path: one shared bottleneck of known capacity carrying
/// [`CrossTraffic`] the prober cannot see directly.
#[derive(Debug, Clone)]
pub struct ProbePath {
    /// Label for metric families and NOC gauges.
    pub name: &'static str,
    /// Bottleneck line rate.
    pub capacity: DataRate,
    /// The competing load (ground truth for error accounting).
    pub cross: CrossTraffic,
}

/// Probing parameters.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Gap between probe trains.
    pub cadence: SimDuration,
    /// Probes per train (pairs = probes − 1).
    pub probes_per_train: usize,
    /// Probe packet size in bytes (jumbo frames keep the relative
    /// timestamp noise small).
    pub probe_bytes: u64,
    /// Receive-timestamp noise: σ of a Gaussian, in nanoseconds. Drawn
    /// for every probe whether or not observability records anything.
    pub noise_ns: f64,
    /// A probe that would wait longer than this in the bottleneck queue
    /// is counted dropped and excluded from gap pairs.
    pub drop_delay: SimDuration,
    /// EWMA weight of the newest train estimate.
    pub ewma_alpha: f64,
    /// Probe traces the tail sampler keeps per window.
    pub keep_slowest: usize,
    /// Exemplars retained per estimate histogram.
    pub exemplar_capacity: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            cadence: SimDuration::from_secs(30),
            probes_per_train: 16,
            probe_bytes: 9_000,
            noise_ns: 200.0,
            drop_delay: SimDuration::from_millis(50),
            ewma_alpha: 0.3,
            keep_slowest: 4,
            exemplar_capacity: 4,
        }
    }
}

/// Exponentially-weighted available-bandwidth estimator.
#[derive(Debug, Clone, Default)]
pub struct AbEstimator {
    alpha: f64,
    current_gbps: Option<f64>,
    trains: u64,
}

impl AbEstimator {
    /// A fresh estimator blending with weight `alpha` per train.
    pub fn new(alpha: f64) -> AbEstimator {
        assert!((0.0..=1.0).contains(&alpha), "alpha in [0,1]");
        AbEstimator {
            alpha,
            current_gbps: None,
            trains: 0,
        }
    }

    /// Fold in one train's raw estimate (Gbps).
    pub fn observe(&mut self, raw_gbps: f64) {
        self.current_gbps = Some(match self.current_gbps {
            None => raw_gbps,
            Some(c) => c + self.alpha * (raw_gbps - c),
        });
        self.trains += 1;
    }

    /// The smoothed estimate, if any train has completed.
    pub fn estimate_gbps(&self) -> Option<f64> {
        self.current_gbps
    }

    /// Trains folded in.
    pub fn trains(&self) -> u64 {
        self.trains
    }
}

/// One per-train estimation datapoint.
#[derive(Debug, Clone, Copy)]
pub struct AbSample {
    /// Train start time.
    pub at: SimTime,
    /// Raw probe-gap estimate for this train (Gbps).
    pub raw_gbps: f64,
    /// The EWMA estimate after folding this train in (Gbps).
    pub smooth_gbps: f64,
    /// Fluid ground truth: capacity minus mean cross traffic over the
    /// train span (Gbps).
    pub true_gbps: f64,
}

/// What [`Prober::finish`] hands back: the estimation record always,
/// the observability artifacts only when the plane was enabled.
#[derive(Debug)]
pub struct MeasureOutcome {
    /// Estimate/error histograms with exemplars, sampler gauges, probe
    /// counters. Empty when observability was off.
    pub families: FamilyRegistry,
    /// Every train's datapoint, in time order.
    pub samples: Vec<AbSample>,
    /// Trains completed.
    pub trains: u64,
    /// Probes injected.
    pub probes_sent: u64,
    /// Probes dropped at the bottleneck (queue delay over the limit).
    pub probes_dropped: u64,
    /// Tail-sampler accounting for the probe traces.
    pub sampler: TailSampleStats,
    /// Exemplars retained across the estimate histogram.
    pub exemplars: usize,
    /// Spans the bounded recorder had to drop (must be 0).
    pub span_dropped: u64,
}

/// The per-path active prober.
///
/// Owns the path model, a probe-train scheduler, the fluid bottleneck,
/// the estimator, and the observability plane (spans + tail sampler),
/// all advanced by [`Prober::advance_to`]. A pure function of
/// `(path, config, seed)`: the `observability` flag changes what is
/// *recorded*, never what is *computed* — noise draws and estimates are
/// identical either way.
pub struct Prober {
    path: ProbePath,
    cfg: ProbeConfig,
    rng: SimRng,
    sched: Scheduler<()>,
    queue: FluidQueue,
    /// Time up to which the bottleneck queue has been advanced.
    queue_t: SimTime,
    estimator: AbEstimator,
    observability: bool,
    spans: SpanRecorder,
    sampler: TailSampler,
    samples: Vec<AbSample>,
    probes_sent: u64,
    probes_dropped: u64,
}

impl Prober {
    /// A prober for `path`; the first train fires one cadence in.
    pub fn new(path: ProbePath, cfg: ProbeConfig, seed: u64, observability: bool) -> Prober {
        assert!(cfg.probes_per_train >= 2, "a train needs at least one gap");
        let mut sched = Scheduler::new();
        sched.schedule_at(SimTime::ZERO + cfg.cadence, ());
        let mut spans = SpanRecorder::new(4 * cfg.probes_per_train.max(64));
        spans.set_enabled(observability);
        let sampler = TailSampler::new(TailSampleConfig {
            window: SimDuration::from_mins(5),
            keep_slowest: cfg.keep_slowest,
            slow_threshold: Some(cfg.drop_delay),
        });
        let queue = FluidQueue::new(path.capacity);
        Prober {
            path,
            rng: SimRng::new(seed).fork(0x9806E),
            sched,
            queue,
            queue_t: SimTime::ZERO,
            estimator: AbEstimator::new(cfg.ewma_alpha),
            cfg,
            observability,
            spans,
            sampler,
            samples: Vec::new(),
            probes_sent: 0,
            probes_dropped: 0,
        }
    }

    /// The probed path.
    pub fn path(&self) -> &ProbePath {
        &self.path
    }

    /// Run every probe train due at or before `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        while let Some((at, ())) = self.sched.pop_until(t) {
            self.run_train(at);
            let next = at + self.cfg.cadence;
            self.sched.schedule_at(next, ());
        }
    }

    /// The current smoothed estimate as a rate, if any train completed.
    pub fn estimate(&self) -> Option<DataRate> {
        self.estimator
            .estimate_gbps()
            .map(|g| DataRate::from_bps((g * 1e9).round().max(0.0) as u64))
    }

    /// Fluid ground truth at `t`: capacity minus the instantaneous cross
    /// rate, floored at zero.
    pub fn true_available(&self, t: SimTime) -> DataRate {
        self.path
            .capacity
            .saturating_sub(self.path.cross.rate_at(t))
    }

    /// Datapoints so far.
    pub fn samples(&self) -> &[AbSample] {
        &self.samples
    }

    /// Probes dropped so far.
    pub fn probes_dropped(&self) -> u64 {
        self.probes_dropped
    }

    /// Advance the bottleneck queue to `t`, splitting at every
    /// cross-traffic breakpoint so each [`FluidQueue::advance`] segment
    /// is constant-rate.
    fn advance_queue_to(&mut self, t: SimTime) {
        while self.queue_t < t {
            let seg_end = match self.path.cross.next_change_after(self.queue_t) {
                Some(c) if c < t => c,
                _ => t,
            };
            let r = self.path.cross.rate_at(self.queue_t);
            self.queue.advance(seg_end.since(self.queue_t), r);
            self.queue_t = seg_end;
        }
    }

    /// One probe train at `at`: inject back-to-back probes at line rate,
    /// collect (noisy) departure timestamps, estimate from the mean
    /// output-gap dilation, record the trace.
    fn run_train(&mut self, at: SimTime) {
        let probe = DataSize::from_bytes(self.cfg.probe_bytes);
        let g_in = probe.time_at(self.path.capacity);
        let g_in_ns = g_in.as_nanos() as f64;
        let cap_gbps = self.path.capacity.gbps_f64();
        let root = self.spans.open(at, "measure", "probe.train", None);

        // Inject, collecting each kept probe's (index, noisy departure).
        let mut kept: Vec<(usize, f64)> = Vec::with_capacity(self.cfg.probes_per_train);
        let mut train_end = at;
        for i in 0..self.cfg.probes_per_train {
            let arrival = at + g_in * i as u64;
            self.advance_queue_to(arrival);
            self.probes_sent += 1;
            // The noise draw happens for every probe, dropped or not —
            // the draw sequence must not depend on queue outcomes that
            // observability could perturb (it can't; belt and braces).
            let noise = self.rng.normal(0.0, self.cfg.noise_ns);
            if self.queue.delay() > self.cfg.drop_delay {
                self.probes_dropped += 1;
                continue;
            }
            self.queue.push(probe);
            let depart = arrival + self.queue.delay();
            train_end = train_end.max(depart);
            let sid = self
                .spans
                .record(arrival, depart, "measure", "probe.send", Some(root));
            self.spans
                .attr_f64(sid, "queue_us", depart.since(arrival).as_secs_f64() * 1e6);
            kept.push((i, depart.as_nanos() as f64 + noise));
        }
        self.spans.close(root, train_end);

        // Probe-gap estimation over adjacent kept pairs: with the
        // bottleneck busy between back-to-back probes, the output gap is
        // Δ = g·(1 + R/C), so R̂ = C·(Δ − g)/g and Â = C − R̂.
        let mut sum_avail = 0.0f64;
        let mut pairs = 0u32;
        for w in kept.windows(2) {
            let (i, d0) = w[0];
            let (j, d1) = w[1];
            if j != i + 1 {
                continue; // a drop broke the pair
            }
            let gap_ns = d1 - d0;
            let cross_gbps = cap_gbps * (gap_ns - g_in_ns) / g_in_ns;
            sum_avail += (cap_gbps - cross_gbps).clamp(0.0, cap_gbps);
            pairs += 1;
        }
        let truth = self
            .path
            .capacity
            .saturating_sub(self.path.cross.mean_over(at, train_end.max(at + g_in)))
            .gbps_f64();
        if pairs > 0 {
            let raw = sum_avail / f64::from(pairs);
            self.estimator.observe(raw);
            let smooth = self.estimator.estimate_gbps().expect("just observed");
            self.spans.attr_f64(root, "est_gbps", raw);
            self.spans.attr_f64(root, "true_gbps", truth);
            self.samples.push(AbSample {
                at,
                raw_gbps: raw,
                smooth_gbps: smooth,
                true_gbps: truth,
            });
        }

        // Drain at train cadence — the recorder is bounded, the sampler
        // decides which whole traces survive.
        let batch = self.spans.take_spans();
        if self.observability {
            self.sampler.ingest(&batch);
        }
    }

    /// Close out the plane: build the metric families (estimate and
    /// error histograms with exemplars linked only to sampler-retained
    /// probe traces), and return the full estimation record.
    ///
    /// # Panics
    /// If any exemplar fails to resolve to a retained trace, or the
    /// span recorder dropped spans.
    pub fn finish(self) -> MeasureOutcome {
        let Prober {
            path,
            cfg,
            sampler,
            spans,
            samples,
            estimator,
            probes_sent,
            probes_dropped,
            observability,
            ..
        } = self;
        let span_dropped = spans.dropped();
        let mut families = FamilyRegistry::new();
        let stats = sampler.stats();
        let mut exemplars = 0usize;
        if observability {
            let labels = [("path", path.name)];
            {
                let h = families.histogram("measure_ab_estimate_gbps", &labels);
                h.enable_exemplars(0x0E5E_ED00 ^ probes_sent, cfg.exemplar_capacity);
                for s in &samples {
                    h.record(s.raw_gbps);
                }
            }
            {
                let h = families.histogram("measure_estimate_error_pct", &labels);
                for s in &samples {
                    h.record(100.0 * (s.raw_gbps - s.true_gbps).abs() / path.capacity.gbps_f64());
                }
            }
            let kept: std::collections::BTreeSet<u64> =
                sampler.kept_root_ids().into_iter().collect();
            let retained = sampler.into_spans();
            {
                // Exemplars only from retained traces, so every exemplar
                // span_id resolves to a sampled probe train.
                let h = families.histogram("measure_ab_estimate_gbps", &labels);
                for s in retained
                    .iter()
                    .filter(|s| s.parent.is_none() && s.name == "probe.train")
                {
                    if let Some(simcore::AttrValue::F64(est)) = s
                        .attrs
                        .iter()
                        .find_map(|(k, v)| (*k == "est_gbps").then_some(v))
                    {
                        h.link_exemplar(*est, s.id.index() as u64, &labels);
                    }
                }
            }
            let ids: Vec<u64> = families
                .get_histogram("measure_ab_estimate_gbps", &labels)
                .expect("histogram just created")
                .exemplars()
                .iter()
                .map(|e| e.span_id)
                .collect();
            for id in &ids {
                assert!(
                    kept.contains(id),
                    "exemplar span_id {id} does not resolve to a sampled probe trace"
                );
            }
            exemplars = ids.len();
            families
                .counter("measure_trains_total", &labels)
                .add(estimator.trains());
            families
                .counter("measure_probes_total", &labels)
                .add(probes_sent);
            families
                .counter("measure_probes_dropped_total", &labels)
                .add(probes_dropped);
            families
                .gauge("measure_sampler_roots_seen", &labels)
                .set(stats.roots_seen as f64);
            families
                .gauge("measure_sampler_roots_kept", &labels)
                .set(stats.roots_kept as f64);
            if let Some(g) = estimator.estimate_gbps() {
                families.gauge("measure_available_gbps", &labels).set(g);
            }
        }
        MeasureOutcome {
            families,
            samples,
            trains: estimator.trains(),
            probes_sent,
            probes_dropped,
            sampler: stats,
            exemplars,
            span_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours(h: u64) -> SimTime {
        SimTime::from_secs(h * 3600)
    }

    #[test]
    fn flat_cross_rate_and_mean() {
        let c = CrossTraffic::flat(DataRate::from_gbps(6));
        assert_eq!(c.rate_at(SimTime::ZERO), DataRate::from_gbps(6));
        assert_eq!(c.rate_at(hours(5)), DataRate::from_gbps(6));
        assert_eq!(c.next_change_after(SimTime::ZERO), None);
        assert_eq!(c.mean_over(SimTime::ZERO, hours(1)), DataRate::from_gbps(6));
    }

    #[test]
    fn square_alternates_and_integrates() {
        let c = CrossTraffic::square(
            DataRate::from_gbps(2),
            DataRate::from_gbps(10),
            SimDuration::from_secs(60),
            SimTime::from_secs(600),
        );
        assert_eq!(c.rate_at(SimTime::from_secs(30)), DataRate::from_gbps(2));
        assert_eq!(c.rate_at(SimTime::from_secs(90)), DataRate::from_gbps(10));
        // Mean over one full period is the midpoint.
        assert_eq!(
            c.mean_over(SimTime::ZERO, SimTime::from_secs(120)),
            DataRate::from_gbps(6)
        );
    }

    #[test]
    fn stationary_mean_tracks_target() {
        let mean = DataRate::from_gbps(20);
        let c = CrossTraffic::stationary(7, mean, 0.2, SimDuration::from_secs(10), hours(4));
        let got = c.mean_over(SimTime::ZERO, hours(4)).gbps_f64();
        assert!(
            (got - 20.0).abs() < 0.5,
            "stationary mean {got} drifted from 20"
        );
    }

    #[test]
    fn bursts_only_add_load() {
        let base = CrossTraffic::stationary(
            11,
            DataRate::from_gbps(10),
            0.1,
            SimDuration::from_secs(30),
            hours(2),
        );
        let base_mean = base.mean_over(SimTime::ZERO, hours(2));
        let bursty = base.clone().with_bursts(
            11,
            DataRate::from_gbps(8),
            SimDuration::from_secs(120),
            SimDuration::from_secs(600),
            hours(2),
        );
        let bursty_mean = bursty.mean_over(SimTime::ZERO, hours(2));
        assert!(bursty_mean > base_mean, "bursts must add load");
        assert!(bursty.peak() <= base.peak() + DataRate::from_gbps(8));
        // Outside every burst the base load shines through.
        for s in [0u64, 5, 50] {
            let t = SimTime::from_secs(s);
            assert!(bursty.rate_at(t) >= base.rate_at(t));
        }
    }

    #[test]
    fn diurnal_stays_in_band() {
        let c = CrossTraffic::diurnal(
            3,
            DataRate::from_gbps(20),
            DataRate::from_gbps(10),
            SimDuration::from_hours(24),
            SimDuration::from_mins(5),
            hours(24),
        );
        for h in 0..24 {
            let r = c.rate_at(hours(h)).gbps_f64();
            assert!((10.0..=30.0).contains(&r), "diurnal rate {r} out of band");
        }
        let m = c.mean_over(SimTime::ZERO, hours(24)).gbps_f64();
        assert!((m - 20.0).abs() < 1.0, "diurnal mean {m} off base");
    }

    #[test]
    fn noiseless_estimate_is_exact_under_constant_cross() {
        // C = 10G, R = 6G, no noise: the gap model recovers 4G exactly.
        let path = ProbePath {
            name: "t",
            capacity: DataRate::from_gbps(10),
            cross: CrossTraffic::flat(DataRate::from_gbps(6)),
        };
        let cfg = ProbeConfig {
            noise_ns: 0.0,
            ..ProbeConfig::default()
        };
        let mut p = Prober::new(path, cfg, 42, true);
        p.advance_to(SimTime::from_secs(120));
        let out_est = p.estimate().expect("trains ran").gbps_f64();
        assert!(
            (out_est - 4.0).abs() < 0.01,
            "noiseless estimate {out_est} != 4.0"
        );
        let out = p.finish();
        assert_eq!(out.probes_dropped, 0);
        assert!(out.trains >= 3);
        assert_eq!(out.span_dropped, 0);
        assert!(out.exemplars >= 1, "estimates must carry exemplars");
    }

    #[test]
    fn estimates_identical_with_observability_off() {
        let mk = |obs: bool| {
            let path = ProbePath {
                name: "t",
                capacity: DataRate::from_gbps(40),
                cross: CrossTraffic::stationary(
                    5,
                    DataRate::from_gbps(25),
                    0.3,
                    SimDuration::from_secs(10),
                    hours(1),
                ),
            };
            let mut p = Prober::new(path, ProbeConfig::default(), 9, obs);
            p.advance_to(SimTime::from_secs(1800));
            p.finish()
        };
        let on = mk(true);
        let off = mk(false);
        assert_eq!(on.samples.len(), off.samples.len());
        for (a, b) in on.samples.iter().zip(off.samples.iter()) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.raw_gbps.to_bits(), b.raw_gbps.to_bits());
            assert_eq!(a.smooth_gbps.to_bits(), b.smooth_gbps.to_bits());
        }
        assert!(off.families.expose().is_empty());
        assert_eq!(off.exemplars, 0);
    }

    #[test]
    fn ewma_smooths_toward_truth() {
        let mut e = AbEstimator::new(0.5);
        e.observe(10.0);
        e.observe(20.0);
        assert!((e.estimate_gbps().unwrap() - 15.0).abs() < 1e-12);
        assert_eq!(e.trains(), 2);
    }

    #[test]
    fn heavy_cross_traffic_drops_probes() {
        // Cross 12G > C = 10G: the queue grows without bound, so late
        // trains see delays past the drop limit.
        let path = ProbePath {
            name: "t",
            capacity: DataRate::from_gbps(10),
            cross: CrossTraffic::flat(DataRate::from_gbps(12)),
        };
        let cfg = ProbeConfig {
            drop_delay: SimDuration::from_millis(1),
            ..ProbeConfig::default()
        };
        let mut p = Prober::new(path, cfg, 1, false);
        p.advance_to(SimTime::from_secs(300));
        assert!(p.probes_dropped() > 0);
    }
}
