//! The customer-facing view ("GUI" model).
//!
//! §2.2: *"Each customer has a graphical user interface to GRIPhoN to
//! visualize and manage his connections. The customer only visualizes the
//! channelized or un-channelized interfaces of the NTE on his premises …
//! The complexity of the GRIPhoN network (access pipes, carrier
//! equipments, network layers, GRIPhoN controller) is hidden from the
//! customer."*
//!
//! We model the GUI as a *view function*: [`Controller::customer_view`]
//! renders exactly what that customer may see — their own connections,
//! states, rates and fault indications — and nothing about paths,
//! wavelengths, other tenants, or carrier inventory. Tests assert the
//! hiding property, not just the rendering.

use std::fmt::Write as _;

use crate::connection::ConnState;
use crate::controller::Controller;
use crate::tenant::CustomerId;

/// A customer-visible connection row.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomerConnectionView {
    /// The connection id (the customer's order handle).
    pub id: String,
    /// A-end site name.
    pub from: String,
    /// Z-end site name.
    pub to: String,
    /// The rate purchased.
    pub rate: String,
    /// Customer-vocabulary status.
    pub status: &'static str,
    /// Cumulative outage, if any.
    pub outage: Option<String>,
}

impl Controller {
    /// Structured per-connection rows for one customer.
    pub fn customer_rows(&self, customer: CustomerId) -> Vec<CustomerConnectionView> {
        self.connections()
            .filter(|c| c.customer == customer && !c.state.is_terminal())
            .map(|c| {
                let status = match c.state {
                    ConnState::Provisioning => "setting up",
                    ConnState::Active => "up",
                    ConnState::Failed => "OUTAGE (fault located, restoring)",
                    ConnState::Restoring => "restoring",
                    ConnState::TearingDown => "releasing",
                    ConnState::Released | ConnState::Blocked => unreachable!(),
                };
                CustomerConnectionView {
                    id: c.id.to_string(),
                    from: self.net.name(c.from).to_string(),
                    to: self.net.name(c.to).to_string(),
                    rate: c.kind.rate().to_string(),
                    status,
                    outage: (!c.outage_total.is_zero() || c.outage_since.is_some()).then(|| {
                        let total = match c.outage_since {
                            Some(start) => c.outage_total + self.now().saturating_since(start),
                            None => c.outage_total,
                        };
                        total.to_string()
                    }),
                }
            })
            .collect()
    }

    /// Render the customer GUI as text.
    pub fn customer_view(&self, customer: CustomerId) -> String {
        let name = self
            .tenants
            .get(customer)
            .map(|t| t.name.clone())
            .unwrap_or_else(|| "?".into());
        let mut out = String::new();
        let _ = writeln!(out, "=== GRIPhoN connections for {name} ===");
        let rows = self.customer_rows(customer);
        if rows.is_empty() {
            out.push_str("(no connections)\n");
            return out;
        }
        for r in rows {
            let _ = write!(
                out,
                "{:<8} {:>4}  {} → {}  [{}]",
                r.id, r.rate, r.from, r.to, r.status
            );
            if let Some(o) = r.outage {
                let _ = write!(out, "  outage so far: {o}");
            }
            out.push('\n');
        }
        if let Some(t) = self.tenants.get(customer) {
            let _ = writeln!(out, "committed {} of {} quota", t.in_use, t.quota);
        }
        out
    }
}

impl Controller {
    /// The carrier's operations view — everything the customer view
    /// hides: spectrum occupancy per fiber, pools, active workload.
    pub fn carrier_view(&self) -> String {
        let mut out = String::from("=== GRIPhoN carrier operations ===\n");
        out.push_str(&self.net.render_ascii());
        out.push_str("\nspectrum:\n");
        out.push_str(&self.net.spectrum_map());
        let (rt, ru) = self.regen_stats();
        let idle_ots = self
            .net
            .transponder_ids()
            .filter(|t| self.net.transponder(*t).is_idle())
            .count();
        let _ = writeln!(
            out,
            "\npools: {} OTs ({} idle), {} regens ({} in use)",
            self.net.transponder_count(),
            idle_ots,
            rt,
            ru
        );
        let mut by_state: std::collections::BTreeMap<&str, usize> = Default::default();
        for c in self.connections() {
            *by_state
                .entry(match c.state {
                    ConnState::Provisioning => "provisioning",
                    ConnState::Active => "active",
                    ConnState::Failed => "failed",
                    ConnState::Restoring => "restoring",
                    ConnState::TearingDown => "tearing-down",
                    ConnState::Released => "released",
                    ConnState::Blocked => "blocked",
                })
                .or_insert(0) += 1;
        }
        let _ = writeln!(out, "connections: {by_state:?}");
        let _ = writeln!(
            out,
            "trunks: {} ({} ready)",
            self.trunks().len(),
            self.trunks().iter().filter(|t| t.ready).count()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::controller::{Controller, ControllerConfig};
    use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};
    use simcore::DataRate;

    fn setup() -> (
        Controller,
        photonic::TestbedIds,
        crate::tenant::CustomerId,
        crate::tenant::CustomerId,
    ) {
        let (net, ids) = PhotonicNetwork::testbed(6);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                ems: EmsProfile::calibrated_deterministic(),
                equalization: EqualizationModel::calibrated_deterministic(),
                ..ControllerConfig::default()
            },
        );
        let a = ctl.tenants.register("acme-cloud", DataRate::from_gbps(100));
        let b = ctl
            .tenants
            .register("bravo-cloud", DataRate::from_gbps(100));
        (ctl, ids, a, b)
    }

    #[test]
    fn view_shows_own_connections_with_status() {
        let (mut ctl, ids, a, _) = setup();
        let id = ctl
            .request_wavelength(a, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        let during = ctl.customer_view(a);
        assert!(during.contains("setting up"));
        ctl.run_until_idle();
        let after = ctl.customer_view(a);
        assert!(after.contains("[up]"), "{after}");
        assert!(after.contains("10G"));
        assert!(after.contains("I → IV"));
        assert!(after.contains(&id.to_string()));
    }

    #[test]
    fn view_hides_other_tenants_and_internals() {
        let (mut ctl, ids, a, b) = setup();
        ctl.request_wavelength(a, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let bs_view = ctl.customer_view(b);
        assert!(bs_view.contains("(no connections)"));
        assert!(!bs_view.contains("conn0"), "must not leak tenant A's order");
        // Carrier internals never appear in any customer view.
        let as_view = ctl.customer_view(a);
        for forbidden in ["λ", "fiber", "regen", "degree", "FXC", "express"] {
            assert!(
                !as_view.contains(forbidden),
                "leaked internal {forbidden:?}: {as_view}"
            );
        }
    }

    #[test]
    fn view_reports_outage_during_fault() {
        let (mut ctl, ids, a, _) = setup();
        ctl.request_wavelength(a, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        let v = ctl.customer_view(a);
        assert!(v.contains("OUTAGE"), "{v}");
        ctl.run_until_idle();
        let v = ctl.customer_view(a);
        assert!(v.contains("[up]"));
        assert!(v.contains("outage so far"), "{v}");
    }

    #[test]
    fn carrier_view_shows_internals() {
        let (mut ctl, ids, a, _) = setup();
        ctl.request_wavelength(a, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let v = ctl.carrier_view();
        assert!(v.contains("spectrum:"), "{v}");
        assert!(v.contains('█'), "one lit channel visible");
        assert!(v.contains("OTs"));
        assert!(v.contains("\"active\": 1"), "{v}");
    }

    #[test]
    fn released_connections_disappear() {
        let (mut ctl, ids, a, _) = setup();
        let id = ctl
            .request_wavelength(a, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.request_teardown(id).unwrap();
        ctl.run_until_idle();
        assert!(ctl.customer_view(a).contains("(no connections)"));
    }
}
