//! Connection records and their lifecycle state machine.
//!
//! Every customer-visible circuit — full wavelength or sub-wavelength —
//! is a [`Connection`]. The state machine:
//!
//! ```text
//!            request            workflow done
//! Requested ─────────▶ Provisioning ─────────▶ Active ◀────────────┐
//!                          │                     │  │               │
//!                          │ blocked             │  │ fiber cut     │ restore
//!                          ▼                     │  ▼               │ workflow
//!                       Blocked       teardown   │ Failed ──▶ Restoring
//!                                     requested  │  │
//!                                                ▼  │ no capacity
//!                                          TearingDown ──▶ Released
//! ```
//!
//! Bridge-and-roll runs as a sub-phase of `Active` (the connection keeps
//! carrying traffic while its bridge is built; the roll itself is the
//! only hit). Outage accounting: `Failed`/`Restoring` time accumulates
//! into [`Connection::outage_total`], the quantity experiments E2/E3
//! report.

use serde::{Deserialize, Serialize};
use simcore::{define_id, DataRate, SimDuration, SimTime};

use otn::{ClientSignal, XcId};
use photonic::{LineRate, RoadmId};

use crate::rwa::WavelengthPlan;
use crate::tenant::CustomerId;

define_id!(
    /// Identifier of a customer connection.
    ConnectionId,
    "conn"
);

define_id!(
    /// Identifier of an OTN trunk (a carrier-internal wavelength that
    /// carries groomed sub-wavelength circuits between OTN switches).
    TrunkId,
    "trunk"
);

/// What kind of circuit this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionKind {
    /// A full wavelength on the DWDM layer.
    Wavelength {
        /// The line rate.
        rate: LineRate,
    },
    /// A 1+1-protected wavelength: two disjoint paths, dedicated
    /// standby, ~50 ms switchover (§1: the expensive today-option that
    /// GRIPhoN's restoration undercuts).
    ProtectedWavelength {
        /// The line rate.
        rate: LineRate,
    },
    /// A sub-wavelength circuit groomed through the OTN layer.
    SubWavelength {
        /// The client signal carried.
        signal: ClientSignal,
    },
}

impl ConnectionKind {
    /// The bandwidth the customer gets.
    pub fn rate(self) -> DataRate {
        match self {
            ConnectionKind::Wavelength { rate } | ConnectionKind::ProtectedWavelength { rate } => {
                rate.rate()
            }
            ConnectionKind::SubWavelength { signal } => signal.rate(),
        }
    }
}

/// Lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnState {
    /// Resources claimed, provisioning workflow running.
    Provisioning,
    /// Carrying traffic.
    Active,
    /// Hit by a failure; waiting for restoration to start.
    Failed,
    /// Restoration workflow running.
    Restoring,
    /// Teardown workflow running.
    TearingDown,
    /// Gone; terminal state.
    Released,
    /// Admission failed (no resources); terminal state.
    Blocked,
}

impl ConnState {
    /// Is the customer's traffic flowing in this state?
    pub fn carrying_traffic(self) -> bool {
        matches!(self, ConnState::Active)
    }

    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(self, ConnState::Released | ConnState::Blocked)
    }
}

/// Resources held by a sub-wavelength circuit: the trunk hops it rides
/// and the cross-connects created in each OTN switch along the way.
#[derive(Debug, Clone, PartialEq)]
pub struct SubWavelengthRoute {
    /// Trunks traversed, in order.
    pub trunks: Vec<TrunkId>,
    /// `(switch index in controller, xc id)` pairs created.
    pub xcs: Vec<(usize, XcId)>,
}

/// Resources held by a connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Resources {
    /// A wavelength plan (path, λ, OTs, regens).
    Wavelength(WavelengthPlan),
    /// OTN trunk slots and switch cross-connects.
    SubWavelength(SubWavelengthRoute),
    /// A 1+1 pair: both legs permanently claimed, traffic on one.
    Protected {
        /// The working leg.
        working: WavelengthPlan,
        /// The (link-disjoint) protect leg.
        protect: WavelengthPlan,
        /// True once a failure has switched traffic to the protect leg.
        on_protect: bool,
    },
}

/// One customer connection.
#[derive(Debug, Clone)]
pub struct Connection {
    /// This connection's id.
    pub id: ConnectionId,
    /// The owning customer.
    pub customer: CustomerId,
    /// A-end node.
    pub from: RoadmId,
    /// Z-end node.
    pub to: RoadmId,
    /// Wavelength or sub-wavelength.
    pub kind: ConnectionKind,
    /// Current lifecycle state.
    pub state: ConnState,
    /// Held resources (None once released / if blocked).
    pub resources: Option<Resources>,
    /// Bridge staged by bridge-and-roll, not yet rolled onto.
    pub bridge: Option<WavelengthPlan>,
    /// When the request was admitted.
    pub requested_at: SimTime,
    /// When the circuit last became Active.
    pub activated_at: Option<SimTime>,
    /// Accumulated outage.
    pub outage_total: SimDuration,
    /// Start of the current outage, if one is in progress.
    pub outage_since: Option<SimTime>,
}

impl Connection {
    /// A new connection entering `Provisioning`.
    pub fn new(
        id: ConnectionId,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        kind: ConnectionKind,
        at: SimTime,
    ) -> Connection {
        Connection {
            id,
            customer,
            from,
            to,
            kind,
            state: ConnState::Provisioning,
            resources: None,
            bridge: None,
            requested_at: at,
            activated_at: None,
            outage_total: SimDuration::ZERO,
            outage_since: None,
        }
    }

    /// Record an outage beginning (idempotent while one is open).
    pub fn outage_start(&mut self, at: SimTime) {
        if self.outage_since.is_none() {
            self.outage_since = Some(at);
        }
    }

    /// Record the outage ending; accumulates into `outage_total`.
    pub fn outage_end(&mut self, at: SimTime) {
        if let Some(start) = self.outage_since.take() {
            self.outage_total += at.saturating_since(start);
        }
    }

    /// The wavelength plan, if this is a wavelength connection with
    /// resources.
    pub fn wavelength_plan(&self) -> Option<&WavelengthPlan> {
        match &self.resources {
            Some(Resources::Wavelength(p)) => Some(p),
            _ => None,
        }
    }

    /// Transition with validity checking.
    ///
    /// # Panics
    /// On an illegal transition — those are controller bugs, not runtime
    /// conditions.
    pub fn transition(&mut self, next: ConnState) {
        use ConnState::*;
        let ok = matches!(
            (self.state, next),
            (Provisioning, Active)
                | (Provisioning, Blocked)
                | (Provisioning, TearingDown)
                | (Active, Failed)
                | (Active, TearingDown)
                | (Failed, Restoring)
                | (Failed, TearingDown)
                | (Failed, Active) // repaired before restoration started
                | (Restoring, Active)
                | (Restoring, Failed) // restoration blocked, wait for retry
                | (TearingDown, Released)
        );
        assert!(
            ok,
            "{}: illegal transition {:?} → {next:?}",
            self.id, self.state
        );
        self.state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> Connection {
        Connection::new(
            ConnectionId::new(0),
            CustomerId::new(0),
            RoadmId::new(0),
            RoadmId::new(1),
            ConnectionKind::Wavelength {
                rate: LineRate::Gbps10,
            },
            SimTime::ZERO,
        )
    }

    #[test]
    fn happy_path_transitions() {
        let mut c = conn();
        assert_eq!(c.state, ConnState::Provisioning);
        c.transition(ConnState::Active);
        assert!(c.state.carrying_traffic());
        c.transition(ConnState::TearingDown);
        c.transition(ConnState::Released);
        assert!(c.state.is_terminal());
    }

    #[test]
    fn failure_and_restoration_cycle() {
        let mut c = conn();
        c.transition(ConnState::Active);
        c.transition(ConnState::Failed);
        c.outage_start(SimTime::from_secs(100));
        c.transition(ConnState::Restoring);
        c.transition(ConnState::Active);
        c.outage_end(SimTime::from_secs(160));
        assert_eq!(c.outage_total, SimDuration::from_secs(60));
        // Second outage accumulates.
        c.transition(ConnState::Failed);
        c.outage_start(SimTime::from_secs(200));
        c.transition(ConnState::Active);
        c.outage_end(SimTime::from_secs(230));
        assert_eq!(c.outage_total, SimDuration::from_secs(90));
    }

    #[test]
    fn outage_start_is_idempotent() {
        let mut c = conn();
        c.outage_start(SimTime::from_secs(10));
        c.outage_start(SimTime::from_secs(20)); // ignored
        c.outage_end(SimTime::from_secs(30));
        assert_eq!(c.outage_total, SimDuration::from_secs(20));
        // end without start is a no-op
        c.outage_end(SimTime::from_secs(40));
        assert_eq!(c.outage_total, SimDuration::from_secs(20));
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn illegal_transition_panics() {
        let mut c = conn();
        c.transition(ConnState::Restoring);
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn terminal_states_stick() {
        let mut c = conn();
        c.transition(ConnState::Blocked);
        c.transition(ConnState::Active);
    }

    #[test]
    fn kind_rates() {
        assert_eq!(
            ConnectionKind::Wavelength {
                rate: LineRate::Gbps40
            }
            .rate(),
            DataRate::from_gbps(40)
        );
        assert_eq!(
            ConnectionKind::SubWavelength {
                signal: ClientSignal::GbE
            }
            .rate(),
            DataRate::from_gbps(1)
        );
    }
}
