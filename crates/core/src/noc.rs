//! The NOC layer: deterministic telemetry scraping and cross-layer alarm
//! correlation (DESIGN.md §10).
//!
//! A carrier NOC does two things this module models:
//!
//! 1. **Telemetry.** A scrape engine driven by its own
//!    [`simcore::Scheduler`] samples every layer of the stack at a fixed
//!    sim-time cadence — per-degree wavelength occupancy and
//!    fragmentation, power-transient margins, EMS queue state, ODU
//!    grooming fill, controller connection/restoration/calendar state and
//!    cloud scheduler backlog — into a labeled
//!    [`simcore::FamilyRegistry`] with Prometheus-style exposition.
//! 2. **Alarm correlation.** A fiber cut raises a cascade — per-span LOS
//!    at the adjacent degrees, ODU AIS on riding trunks, terminal OT LOS
//!    and finally client-port drops. The correlation engine reduces the
//!    storm to one *root-cause domain* per injected fault, counts every
//!    secondary alarm as suppressed against its root, and records the
//!    detection → localization → restoration-start latency chain that
//!    feeds [`crate::sla`] availability accounting.
//!
//! ## Determinism contract
//!
//! The NOC is an **observer**. It owns its own scheduler, never touches
//! the controller's event queue, RNG, trace, span recorder or
//! [`simcore::MetricsRegistry`], and all of its state lives in `BTreeMap`s. Scrapes
//! execute at controller event boundaries (simulation state is
//! piecewise-constant between events, so sampling at the boundary equals
//! sampling at the nominal cadence instant) and are stamped with the
//! *nominal* scrape time. Simulation outcomes are therefore byte-identical
//! with the NOC enabled or disabled — `tests/determinism.rs` enforces it.

use std::collections::BTreeMap;

use simcore::{FamilyRegistry, Scheduler, SimDuration, SimTime};

/// The root cause a domain of correlated alarms is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RootCause {
    /// A fiber cut (raw [`photonic::FiberId`]).
    FiberCut(u32),
    /// A transponder hardware fault (raw [`photonic::TransponderId`]).
    OtFault(u32),
}

impl std::fmt::Display for RootCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootCause::FiberCut(id) => write!(f, "fiber{id} cut"),
            RootCause::OtFault(id) => write!(f, "ot{id} fault"),
        }
    }
}

impl RootCause {
    /// Label value used in metric families.
    fn cause_label(&self) -> &'static str {
        match self {
            RootCause::FiberCut(_) => "fiber_cut",
            RootCause::OtFault(_) => "ot_fault",
        }
    }
}

/// Correlation state of one root-cause event.
#[derive(Debug, Clone)]
pub struct Domain {
    /// When the physical fault was injected.
    pub injected_at: SimTime,
    /// First alarm of any kind attributed here (detection).
    pub first_alarm_at: Option<SimTime>,
    /// When the root-cause alarm itself arrived (localization /
    /// notification).
    pub localized_at: Option<SimTime>,
    /// When the first restoration for this domain started.
    pub restoration_started_at: Option<SimTime>,
    /// Secondary alarms suppressed against this root.
    pub suppressed: u64,
}

/// The NOC: scrape engine + correlation engine. Lives on
/// [`crate::controller::Controller`] as the `noc` field; disabled (and
/// free) by default — call [`Noc::enable`] before driving the controller.
#[derive(Default, Clone)]
pub struct Noc {
    enabled: bool,
    interval: SimDuration,
    /// Drives the scrape cadence; deliberately separate from the
    /// controller's scheduler so enabling the NOC adds no events there.
    sched: Scheduler<()>,
    /// All telemetry and correlation metric families.
    pub families: FamilyRegistry,
    domains: BTreeMap<RootCause, Domain>,
    /// Inventory joins populated at fault-injection time: which fiber a
    /// symptom's reporting entity was riding. Keyed by raw ids because
    /// symptoms name entities across layers.
    ot_hint: BTreeMap<u32, u32>,
    trunk_hint: BTreeMap<u32, u32>,
    client_hint: BTreeMap<(u32, u32), u32>,
    unattributed: u64,
    scrapes: u64,
}

impl Noc {
    /// A disabled NOC (all observation hooks are no-ops).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn the NOC on with the given scrape cadence. The first scrape is
    /// due one interval after the current controller time.
    pub fn enable(&mut self, interval: SimDuration) {
        assert!(
            interval > SimDuration::ZERO,
            "scrape interval must be positive"
        );
        self.enabled = true;
        self.interval = interval;
        self.sched.schedule_after(interval, ());
    }

    /// Is the NOC observing?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Scrape cadence (ZERO when disabled).
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of completed scrapes.
    pub fn scrapes(&self) -> u64 {
        self.scrapes
    }

    /// If a scrape is due at or before `now`, consume it, schedule the
    /// next one and return the *nominal* scrape time. The controller
    /// calls this after every event boundary and performs the actual
    /// layer sampling.
    pub(crate) fn take_due_scrape(&mut self, now: SimTime) -> Option<SimTime> {
        if !self.enabled {
            return None;
        }
        let due = self.sched.peek_time()?;
        if due > now {
            return None;
        }
        let (t, ()) = self.sched.pop().expect("peeked event exists");
        self.sched.schedule_after(self.interval, ());
        self.scrapes += 1;
        self.families.counter("noc_scrapes_total", &[]).incr();
        Some(t)
    }

    // ── fault-injection hooks (controller-facing) ───────────────────

    /// A physical fault was injected; open its root-cause domain.
    pub fn on_fault_injected(&mut self, cause: RootCause, at: SimTime) {
        if !self.enabled {
            return;
        }
        self.domains.entry(cause).or_insert(Domain {
            injected_at: at,
            first_alarm_at: None,
            localized_at: None,
            restoration_started_at: None,
            suppressed: 0,
        });
    }

    /// Inventory join: transponder `ot` was riding `fiber` when it was
    /// cut (its OT LOS will be attributed there).
    pub fn hint_ot(&mut self, ot: u32, fiber: u32) {
        if self.enabled {
            self.ot_hint.insert(ot, fiber);
        }
    }

    /// Inventory join: OTN trunk `trunk` was riding `fiber`.
    pub fn hint_trunk(&mut self, trunk: u32, fiber: u32) {
        if self.enabled {
            self.trunk_hint.insert(trunk, fiber);
        }
    }

    /// Inventory join: client port `(switch, port)` depended on `fiber`.
    pub fn hint_client(&mut self, switch: u32, port: u32, fiber: u32) {
        if self.enabled {
            self.client_hint.insert((switch, port), fiber);
        }
    }

    /// Resolve an OT LOS symptom to its root cause via the inventory join.
    pub(crate) fn resolve_ot(&self, ot: u32) -> Option<RootCause> {
        self.ot_hint.get(&ot).map(|f| RootCause::FiberCut(*f))
    }

    /// Resolve an ODU AIS symptom.
    pub(crate) fn resolve_trunk(&self, trunk: u32) -> Option<RootCause> {
        self.trunk_hint.get(&trunk).map(|f| RootCause::FiberCut(*f))
    }

    /// Resolve a client-port-down symptom.
    pub(crate) fn resolve_client(&self, switch: u32, port: u32) -> Option<RootCause> {
        self.client_hint
            .get(&(switch, port))
            .map(|f| RootCause::FiberCut(*f))
    }

    // ── alarm-arrival hooks ─────────────────────────────────────────

    /// The root-cause alarm itself arrived (FiberDown telemetry, OtFail
    /// equipment alarm). Records the detection and localization
    /// latencies relative to the injected fault.
    pub fn on_root_alarm(&mut self, cause: RootCause, at: SimTime) {
        if !self.enabled {
            return;
        }
        let label = cause.cause_label();
        let Some(d) = self.domains.get_mut(&cause) else {
            // A root alarm with no known injection (spontaneous telemetry)
            // opens its own domain with zero latency baseline.
            self.domains.insert(
                cause,
                Domain {
                    injected_at: at,
                    first_alarm_at: Some(at),
                    localized_at: Some(at),
                    restoration_started_at: None,
                    suppressed: 0,
                },
            );
            return;
        };
        if d.first_alarm_at.is_none() {
            d.first_alarm_at = Some(at);
            let secs = at.saturating_since(d.injected_at).as_secs_f64();
            self.families
                .histogram("noc_detect_secs", &[("cause", label)])
                .record(secs);
        }
        if d.localized_at.is_none() {
            d.localized_at = Some(at);
            let secs = at.saturating_since(d.injected_at).as_secs_f64();
            self.families
                .histogram("noc_localize_secs", &[("cause", label)])
                .record(secs);
        }
    }

    /// A secondary (symptom) alarm arrived, pre-resolved by the
    /// controller to its root cause (or `None` when no inventory join
    /// matched). Counts suppression or unattributed fallout.
    pub fn on_symptom(&mut self, resolved: Option<RootCause>, kind: &'static str, at: SimTime) {
        if !self.enabled {
            return;
        }
        match resolved.and_then(|c| self.domains.get_mut(&c).map(|d| (c, d))) {
            Some((cause, d)) => {
                d.suppressed += 1;
                if d.first_alarm_at.is_none() {
                    d.first_alarm_at = Some(at);
                    let secs = at.saturating_since(d.injected_at).as_secs_f64();
                    self.families
                        .histogram("noc_detect_secs", &[("cause", cause.cause_label())])
                        .record(secs);
                }
                self.families
                    .counter("noc_alarms_suppressed_total", &[("kind", kind)])
                    .incr();
            }
            None => {
                self.unattributed += 1;
                self.families
                    .counter("noc_alarms_unattributed_total", &[("kind", kind)])
                    .incr();
            }
        }
    }

    /// The controller started the first restoration workflow after a
    /// fault. Attributed to the earliest localized domain that has not
    /// yet seen a restoration start; records the injection →
    /// restoration-start latency that bounds the outage the SLA ledger
    /// will account.
    pub fn on_restoration_started(&mut self, at: SimTime) {
        if !self.enabled {
            return;
        }
        let Some((cause, d)) = self
            .domains
            .iter_mut()
            .find(|(_, d)| d.localized_at.is_some() && d.restoration_started_at.is_none())
            .map(|(c, d)| (*c, d))
        else {
            return;
        };
        d.restoration_started_at = Some(at);
        let secs = at.saturating_since(d.injected_at).as_secs_f64();
        self.families
            .histogram("noc_restore_start_secs", &[("cause", cause.cause_label())])
            .record(secs);
    }

    /// An SLO burn-rate alert fired. Attribute it to the most recent
    /// root-cause domain already open at `at` — the fault whose fallout
    /// the burning error budget is measuring — and count it as an
    /// alarm-grade event in the families. Returns the attributed cause
    /// (`None` when no fault predates the alert: a burn with no known
    /// physical trigger is itself worth surfacing, as `cause="unknown"`).
    pub fn on_slo_alert(
        &mut self,
        slo: &str,
        severity: &'static str,
        at: SimTime,
    ) -> Option<RootCause> {
        if !self.enabled {
            return None;
        }
        let attributed = self
            .domains
            .iter()
            .filter(|(_, d)| d.injected_at <= at)
            .max_by_key(|(c, d)| (d.injected_at, **c))
            .map(|(c, _)| *c);
        let cause = attributed.map_or("unknown", |c| c.cause_label());
        self.families
            .counter(
                "noc_slo_alerts_total",
                &[("cause", cause), ("severity", severity), ("slo", slo)],
            )
            .incr();
        attributed
    }

    // ── reporting ───────────────────────────────────────────────────

    /// All root-cause domains, in deterministic order.
    pub fn domains(&self) -> impl Iterator<Item = (&RootCause, &Domain)> {
        self.domains.iter()
    }

    /// Total secondary alarms suppressed across all domains.
    pub fn suppressed_total(&self) -> u64 {
        self.domains.values().map(|d| d.suppressed).sum()
    }

    /// Secondary alarms that resolved to no known root cause. A healthy
    /// correlation run ends with zero.
    pub fn unattributed(&self) -> u64 {
        self.unattributed
    }

    /// Multi-line text dashboard: one row per root-cause domain with its
    /// suppression count and latency chain, plus totals.
    pub fn dashboard(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "NOC: {} scrapes @ {} | {} root cause(s), {} suppressed, {} unattributed",
            self.scrapes,
            self.interval,
            self.domains.len(),
            self.suppressed_total(),
            self.unattributed
        );
        for (cause, d) in &self.domains {
            let fmt_lat = |t: Option<SimTime>| match t {
                Some(t) => format!("{:.2}s", t.saturating_since(d.injected_at).as_secs_f64()),
                None => "—".to_string(),
            };
            let _ = writeln!(
                out,
                "  {cause}: injected [{}] detect={} localize={} restore-start={} suppressed={}",
                d.injected_at,
                fmt_lat(d.first_alarm_at),
                fmt_lat(d.localized_at),
                fmt_lat(d.restoration_started_at),
                d.suppressed
            );
        }
        out
    }

    /// Decision-point observation pushed by the cloud schedulers: the
    /// bulk-transfer backlog of one data-center pair. (The scrape engine
    /// cannot reach into a policy's run loop, so policies report their
    /// queue state at each decision tick; the gauges hold the latest.)
    pub fn observe_cloud_backlog(&mut self, pair: usize, backlog_tb: f64, active_members: u64) {
        if !self.enabled {
            return;
        }
        let p = pair.to_string();
        self.families
            .gauge("noc_cloud_backlog_tb", &[("pair", &p)])
            .set(backlog_tb);
        self.families
            .gauge("noc_cloud_pair_members", &[("pair", &p)])
            .set(active_members as f64);
    }

    /// Decision-point observation pushed by the measurement plane: the
    /// latest available-bandwidth estimate for one probed path and its
    /// error against the fluid ground truth. Mis-estimation is a NOC
    /// signal like any alarm — the gauges make it attributable next to
    /// the backlog it mis-sized.
    pub fn observe_available_bw(&mut self, path: &str, estimate_gbps: f64, error_pct: f64) {
        if !self.enabled {
            return;
        }
        self.families
            .gauge("noc_measure_available_gbps", &[("path", path)])
            .set(estimate_gbps);
        self.families
            .gauge("noc_measure_error_pct", &[("path", path)])
            .set(error_pct);
    }
}

/// Share of free channels *not* reachable in the largest contiguous free
/// block: 0 when the free space is one run (or the mask is empty), →1 as
/// the free space shatters into single-channel slivers.
fn fragmentation(free_mask: u128) -> f64 {
    let free = free_mask.count_ones() as f64;
    if free == 0.0 {
        return 0.0;
    }
    let mut largest: u32 = 0;
    let mut run: u32 = 0;
    let mut m = free_mask;
    while m != 0 {
        if m & 1 == 1 {
            run += 1;
            largest = largest.max(run);
        } else {
            run = 0;
        }
        m >>= 1;
    }
    1.0 - f64::from(largest) / free
}

impl crate::controller::Controller {
    /// Run every scrape whose nominal time has been reached. Called at
    /// each event boundary by `step`/`run_until`; a no-op while the NOC
    /// is disabled.
    pub(crate) fn noc_pump(&mut self) {
        if !self.noc.is_enabled() {
            return;
        }
        let now = self.now();
        while let Some(t) = self.noc.take_due_scrape(now) {
            self.noc_scrape(t);
        }
    }

    /// One full multi-layer telemetry sweep, stamped with the nominal
    /// scrape time `t`. Samples are collected first (immutable borrows),
    /// then written into the NOC's families.
    fn noc_scrape(&mut self, t: SimTime) {
        type Sample = (&'static str, Vec<(&'static str, String)>, f64);
        let mut samples: Vec<Sample> = Vec::new();
        let mut push = |name: &'static str, labels: Vec<(&'static str, String)>, v: f64| {
            samples.push((name, labels, v));
        };

        // Photonic layer: per-degree wavelength occupancy + fragmentation.
        for r in self.net.roadm_ids() {
            let roadm = self.net.roadm(r);
            for di in 0..roadm.degree_count() {
                let d = photonic::DegreeId::from_index(di);
                let labels = vec![("roadm", r.to_string()), ("degree", di.to_string())];
                push(
                    "noc_degree_lit_lambdas",
                    labels.clone(),
                    roadm.lit_count(d) as f64,
                );
                push(
                    "noc_degree_fragmentation",
                    labels,
                    fragmentation(roadm.free_mask(d)),
                );
            }
        }
        // Power layer: per-fiber transient margin — how many dB of
        // tolerance remain if one channel drops off the line right now.
        // Negative on thin lines: the channel count is below the safe
        // survivor threshold.
        for f in self.net.fiber_ids() {
            let lit = self.net.lit_lambdas_on_fiber(f);
            let margin = self.cfg.transients.tolerance_db
                - self.cfg.transients.depth_db(lit.saturating_sub(1));
            push(
                "noc_power_margin_db",
                vec![("fiber", f.to_string())],
                margin,
            );
        }
        // EMS plane: serialized command queue and in-flight workflows.
        push(
            "noc_ems_queue_depth",
            vec![("queue", "restoration".to_string())],
            self.restoration_queue.len() as f64,
        );
        push(
            "noc_ems_inflight",
            vec![("kind", "restoration".to_string())],
            self.restorations_in_flight as f64,
        );
        for (kind, state) in [
            ("provisioning", crate::connection::ConnState::Provisioning),
            ("tearing_down", crate::connection::ConnState::TearingDown),
            ("restoring", crate::connection::ConnState::Restoring),
        ] {
            let n = self.conns.values().filter(|c| c.state == state).count();
            push(
                "noc_ems_inflight",
                vec![("kind", kind.to_string())],
                n as f64,
            );
        }
        // OTN layer: switch fabric load and trunk tributary fill.
        for (i, sw) in self.switches.iter().enumerate() {
            let labels = vec![("switch", i.to_string())];
            push(
                "noc_otn_fabric_gbps",
                labels.clone(),
                sw.fabric_used().gbps_f64(),
            );
            push("noc_otn_xc_count", labels, sw.xc_count() as f64);
        }
        for tr in &self.trunks {
            let (sw, port) = tr.line_a;
            let total = self.switches[sw].total_ts(port);
            let fill = if total == 0 {
                0.0
            } else {
                1.0 - self.switches[sw].free_ts(port) as f64 / total as f64
            };
            let labels = vec![("trunk", tr.id.raw().to_string())];
            push("noc_trunk_fill", labels.clone(), fill);
            push("noc_trunk_ready", labels, f64::from(u8::from(tr.ready)));
        }
        // Controller: connection census, fault state, calendar.
        for (label, state) in [
            ("provisioning", crate::connection::ConnState::Provisioning),
            ("active", crate::connection::ConnState::Active),
            ("failed", crate::connection::ConnState::Failed),
            ("restoring", crate::connection::ConnState::Restoring),
            ("tearing_down", crate::connection::ConnState::TearingDown),
            ("released", crate::connection::ConnState::Released),
            ("blocked", crate::connection::ConnState::Blocked),
        ] {
            let n = self.conns.values().filter(|c| c.state == state).count();
            push(
                "noc_connections",
                vec![("state", label.to_string())],
                n as f64,
            );
        }
        push("noc_down_fibers", Vec::new(), self.down_fibers.len() as f64);
        for (label, pred) in [
            (
                "booked",
                (&|s: &crate::calendar::ReservationState| {
                    matches!(s, crate::calendar::ReservationState::Booked)
                }) as &dyn Fn(&crate::calendar::ReservationState) -> bool,
            ),
            ("active", &|s| {
                matches!(s, crate::calendar::ReservationState::Active(_))
            }),
            ("completed", &|s| {
                matches!(s, crate::calendar::ReservationState::Completed)
            }),
            ("failed", &|s| {
                matches!(s, crate::calendar::ReservationState::ActivationFailed(_))
            }),
        ] {
            let n = self.reservations.iter().filter(|r| pred(&r.state)).count();
            push(
                "noc_reservations",
                vec![("state", label.to_string())],
                n as f64,
            );
        }

        let secs = t.saturating_since(SimTime::ZERO).as_secs_f64();
        self.noc
            .families
            .gauge("noc_scrape_time_secs", &[])
            .set(secs);
        for (name, labels, v) in samples {
            let lref: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.noc.families.gauge(name, &lref).set(v);
        }
    }

    /// Feed one delivered alarm to the correlation engine, resolving
    /// symptoms to their root cause via topology state and the NOC's
    /// inventory joins. Called from the alarm handler; a no-op while the
    /// NOC is disabled.
    pub(crate) fn noc_observe_alarm(&mut self, alarm: &photonic::Alarm) {
        if !self.noc.is_enabled() {
            return;
        }
        use photonic::alarm::AlarmKind;
        match alarm.kind {
            AlarmKind::FiberDown { fiber } => self
                .noc
                .on_root_alarm(RootCause::FiberCut(fiber.raw()), alarm.at),
            AlarmKind::OtFail { ot } => self
                .noc
                .on_root_alarm(RootCause::OtFault(ot.raw()), alarm.at),
            AlarmKind::DegreeLos { roadm, degree, .. } => {
                let cause = self
                    .net
                    .roadm(roadm)
                    .fiber_of(degree)
                    .ok()
                    .map(|f| RootCause::FiberCut(f.raw()));
                self.noc.on_symptom(cause, "degree_los", alarm.at);
            }
            AlarmKind::OtLos { ot } => {
                let cause = self.noc.resolve_ot(ot.raw());
                self.noc.on_symptom(cause, "ot_los", alarm.at);
            }
            AlarmKind::OduAis { trunk } => {
                let cause = self.noc.resolve_trunk(trunk);
                self.noc.on_symptom(cause, "odu_ais", alarm.at);
            }
            AlarmKind::ClientPortDown { switch, port } => {
                let cause = self.noc.resolve_client(switch, port);
                self.noc.on_symptom(cause, "client_port_down", alarm.at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_noc_is_inert() {
        let mut noc = Noc::new();
        noc.on_fault_injected(RootCause::FiberCut(1), SimTime::ZERO);
        noc.on_root_alarm(RootCause::FiberCut(1), SimTime::from_secs(1));
        noc.on_symptom(
            Some(RootCause::FiberCut(1)),
            "degree_los",
            SimTime::from_secs(1),
        );
        noc.on_restoration_started(SimTime::from_secs(2));
        assert!(noc.families.is_empty());
        assert_eq!(noc.domains().count(), 0);
        assert_eq!(noc.take_due_scrape(SimTime::from_secs(100)), None);
    }

    #[test]
    fn scrape_cadence_is_exact() {
        let mut noc = Noc::new();
        noc.enable(SimDuration::from_secs(60));
        assert_eq!(noc.take_due_scrape(SimTime::from_secs(59)), None);
        assert_eq!(
            noc.take_due_scrape(SimTime::from_secs(60)),
            Some(SimTime::from_secs(60))
        );
        // A long gap releases every missed tick at its nominal time.
        assert_eq!(
            noc.take_due_scrape(SimTime::from_secs(200)),
            Some(SimTime::from_secs(120))
        );
        assert_eq!(
            noc.take_due_scrape(SimTime::from_secs(200)),
            Some(SimTime::from_secs(180))
        );
        assert_eq!(noc.take_due_scrape(SimTime::from_secs(200)), None);
        assert_eq!(noc.scrapes(), 3);
    }

    #[test]
    fn cascade_correlates_to_one_root() {
        let mut noc = Noc::new();
        noc.enable(SimDuration::from_secs(60));
        let t0 = SimTime::from_secs(100);
        noc.on_fault_injected(RootCause::FiberCut(7), t0);
        noc.hint_ot(3, 7);
        noc.hint_trunk(1, 7);
        noc.hint_client(0, 5, 7);
        // Symptoms arrive before the root telemetry (DegreeLos at +50 ms
        // beats FiberDown at +500 ms).
        let ms = |m: u64| t0 + SimDuration::from_millis(m);
        noc.on_symptom(Some(RootCause::FiberCut(7)), "degree_los", ms(50));
        noc.on_symptom(Some(RootCause::FiberCut(7)), "degree_los", ms(50));
        noc.on_root_alarm(RootCause::FiberCut(7), ms(500));
        noc.on_symptom(noc.resolve_trunk(1), "odu_ais", ms(1000));
        noc.on_symptom(noc.resolve_ot(3), "ot_los", ms(2500));
        noc.on_symptom(noc.resolve_client(0, 5), "client_port_down", ms(3000));
        noc.on_restoration_started(ms(600));
        assert_eq!(noc.suppressed_total(), 5);
        assert_eq!(noc.unattributed(), 0);
        let (_, d) = noc.domains().next().unwrap();
        assert_eq!(d.first_alarm_at, Some(ms(50)));
        assert_eq!(d.localized_at, Some(ms(500)));
        assert_eq!(d.restoration_started_at, Some(ms(600)));
        // Latency chain landed in the families.
        let h = noc
            .families
            .get_histogram("noc_detect_secs", &[("cause", "fiber_cut")])
            .unwrap();
        assert!((h.mean() - 0.05).abs() < 1e-9);
        let dash = noc.dashboard();
        assert!(dash.contains("fiber7 cut"), "{dash}");
        assert!(dash.contains("suppressed=5"), "{dash}");
    }

    #[test]
    fn slo_alerts_attribute_to_latest_open_domain() {
        let mut noc = Noc::new();
        noc.enable(SimDuration::from_secs(60));
        // No fault yet: the alert is surfaced but unattributed.
        assert_eq!(
            noc.on_slo_alert("availability", "page", SimTime::from_secs(5)),
            None
        );
        noc.on_fault_injected(RootCause::FiberCut(3), SimTime::from_secs(10));
        noc.on_fault_injected(RootCause::OtFault(8), SimTime::from_secs(40));
        // Alert between the two faults → the fiber cut owns it.
        assert_eq!(
            noc.on_slo_alert("availability", "page", SimTime::from_secs(20)),
            Some(RootCause::FiberCut(3))
        );
        // Alert after both → the most recent fault owns it.
        assert_eq!(
            noc.on_slo_alert("setup_latency_p99", "ticket", SimTime::from_secs(90)),
            Some(RootCause::OtFault(8))
        );
        let exp = noc.families.expose();
        assert!(
            exp.contains(
                "noc_slo_alerts_total{cause=\"unknown\",severity=\"page\",slo=\"availability\"} 1"
            ),
            "{exp}"
        );
        assert!(
            exp.contains(
                "noc_slo_alerts_total{cause=\"fiber_cut\",severity=\"page\",slo=\"availability\"} 1"
            ),
            "{exp}"
        );
        // Disabled NOCs ignore alerts entirely.
        let mut off = Noc::new();
        assert_eq!(
            off.on_slo_alert("availability", "page", SimTime::ZERO),
            None
        );
        assert!(off.families.is_empty());
    }

    #[test]
    fn unresolvable_symptom_counts_as_unattributed() {
        let mut noc = Noc::new();
        noc.enable(SimDuration::from_secs(60));
        noc.on_symptom(None, "ot_los", SimTime::from_secs(1));
        assert_eq!(noc.unattributed(), 1);
        assert_eq!(
            noc.families
                .counter_family_total("noc_alarms_unattributed_total"),
            1
        );
    }
}
