//! Routing and wavelength assignment (RWA).
//!
//! The controller's path-selection engine:
//!
//! - **Routing** — Yen's k-shortest-paths over the up-fiber graph,
//!   weighted by route kilometres (carrier practice: distance ≈ latency ≈
//!   cost). Candidates are examined in order until one passes wavelength,
//!   transponder, reach and regen checks, so the controller naturally
//!   prefers short paths but degrades gracefully under contention.
//! - **Wavelength assignment** — first-fit with the continuity
//!   constraint: one wavelength free on *every* fiber of the path.
//!   (First-fit is the classic low-blocking heuristic; the ROADM layer's
//!   conflict detection guarantees safety regardless.)
//! - **Reach** — paths whose transparent length exceeds the rate's reach
//!   budget get regens inserted at intermediate nodes, consuming from the
//!   per-node regen pools ([`photonic::ReachModel`] decides where).
//!   Regens here are same-wavelength 3R devices: wavelength conversion is
//!   *not* modelled, so continuity holds end-to-end.
//! - **Disjoint paths** — for 1+1 protection, bridge-and-roll and
//!   shared-mesh backup planning, a link-disjoint second path is found by
//!   pruning the first path's fibers and re-routing.
//!
//! The heavy lifting lives in [`PathEngine`]: epoch-stamped Dijkstra
//! scratch buffers (no per-call allocation), heap-ranked hash-deduplicated
//! Yen candidates, and a route cache invalidated for free by the
//! network's [topology epoch](PhotonicNetwork::topology_epoch). The free
//! functions remain as thin wrappers for one-shot callers.

use photonic::{
    FiberId, LineRate, PhotonicNetwork, ReachModel, RegenId, RoadmId, TransponderId, Wavelength,
};

/// Region partition of a plant for region-restricted path search.
///
/// Nodes are either interior to exactly one region or part of the
/// backbone transit core ([`RegionMap::BACKBONE`]). The map is only
/// *installed* after [`RegionMap::validate`] proves the single-gateway
/// invariant: every region's interior touches the rest of the plant
/// through exactly one backbone hub. Under that invariant a simple path
/// can never cross a third region's interior, so restricting Dijkstra /
/// Yen to `{region(src), region(dst), backbone}` returns **exactly** the
/// paths a whole-plant search would — the restriction is a pure search-
/// space reduction (per-query cost tracks region size, not plant size),
/// never a heuristic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap {
    /// Region id per ROADM index; [`RegionMap::BACKBONE`] marks hubs.
    region_of: Vec<u16>,
}

impl RegionMap {
    /// Region id of backbone transit hubs (members of every search).
    pub const BACKBONE: u16 = u16::MAX;

    /// Wrap a per-node region assignment (one entry per ROADM index).
    pub fn new(region_of: Vec<u16>) -> RegionMap {
        RegionMap { region_of }
    }

    /// The region of a node.
    pub fn region(&self, n: RoadmId) -> u16 {
        self.region_of[n.index()]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.region_of.len()
    }

    /// True when the map covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.region_of.is_empty()
    }

    /// Is `node` admissible for a query between regions `ra` and `rb`?
    #[inline]
    fn admits(&self, node: RoadmId, ra: u16, rb: u16) -> bool {
        let r = self.region_of[node.index()];
        r == ra || r == rb || r == Self::BACKBONE
    }

    /// Prove the single-gateway invariant against a plant:
    ///
    /// 1. the map covers every node;
    /// 2. no fiber connects two *different* region interiors directly;
    /// 3. each region's interior is adjacent to exactly one backbone hub.
    ///
    /// Returns the offending condition as text on failure; installation
    /// into a [`PathEngine`] refuses maps that fail, because restricted
    /// search is only exact under this invariant.
    pub fn validate(&self, net: &PhotonicNetwork) -> Result<(), String> {
        if self.region_of.len() != net.roadm_count() {
            return Err(format!(
                "region map covers {} nodes, plant has {}",
                self.region_of.len(),
                net.roadm_count()
            ));
        }
        let regions = self
            .region_of
            .iter()
            .filter(|&&r| r != Self::BACKBONE)
            .map(|&r| r as usize + 1)
            .max()
            .unwrap_or(0);
        let mut gateway: Vec<Option<RoadmId>> = vec![None; regions];
        for f in net.fiber_ids() {
            let l = net.fiber(f);
            let (ra, rb) = (self.region_of[l.a.index()], self.region_of[l.b.index()]);
            if ra == rb {
                continue;
            }
            if ra != Self::BACKBONE && rb != Self::BACKBONE {
                return Err(format!("{f} connects interiors of regions {ra} and {rb}"));
            }
            let (hub, region) = if ra == Self::BACKBONE {
                (l.a, rb)
            } else {
                (l.b, ra)
            };
            match gateway[region as usize] {
                None => gateway[region as usize] = Some(hub),
                Some(h) if h == hub => {}
                Some(h) => {
                    return Err(format!(
                        "region {region} reaches the backbone through both {h} and {hub}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A fully resolved wavelength-connection plan, ready to provision.
#[derive(Debug, Clone, PartialEq)]
pub struct WavelengthPlan {
    /// End-to-end fiber sequence.
    pub path: Vec<FiberId>,
    /// The assigned wavelength (continuity holds end-to-end).
    pub lambda: Wavelength,
    /// Transponder at the source node.
    pub ot_src: TransponderId,
    /// Transponder at the destination node.
    pub ot_dst: TransponderId,
    /// Regens claimed at intermediate nodes (reach extension).
    pub regens: Vec<RegenId>,
}

impl WavelengthPlan {
    /// Number of hops (fibers) in the path.
    pub fn hops(&self) -> usize {
        self.path.len()
    }
}

/// Why no plan could be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RwaError {
    /// No route exists between the endpoints over up fibers.
    NoRoute,
    /// Routes exist, but none passed wavelength + OT + regen checks.
    /// Carries the number of candidate paths examined.
    Blocked {
        /// Candidates that were examined and rejected.
        candidates: usize,
    },
}

impl std::fmt::Display for RwaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RwaError::NoRoute => write!(f, "no route"),
            RwaError::Blocked { candidates } => {
                write!(f, "blocked after {candidates} candidate paths")
            }
        }
    }
}

impl std::error::Error for RwaError {}

/// Reusable Dijkstra state: distance/predecessor arrays indexed by node,
/// exclusion marks indexed by node/fiber, and the frontier heap. Validity
/// is tracked by an epoch *stamp* — a slot is live only if its stamp
/// matches the current run's, so "clearing" all arrays between runs is a
/// single counter increment, and nothing is allocated per call once the
/// vectors have grown to the network size.
#[derive(Debug, Default)]
struct DijkstraScratch {
    stamp: u64,
    /// Distance from the source in metres; valid iff `dist_stamp` matches.
    dist: Vec<u64>,
    dist_stamp: Vec<u64>,
    /// `(predecessor node, arriving fiber)`; valid iff `prev_stamp` matches.
    prev: Vec<(RoadmId, FiberId)>,
    prev_stamp: Vec<u64>,
    /// A node/fiber is excluded from this run iff its mark matches.
    node_excluded: Vec<u64>,
    fiber_excluded: Vec<u64>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, RoadmId)>>,
}

/// The per-query region restriction handed down to the Dijkstra scratch:
/// the installed map plus the two endpoint regions whose interiors (and
/// the backbone) are admissible. `None` searches the whole plant.
type RegionFilter<'a> = Option<(&'a RegionMap, u16, u16)>;

impl DijkstraScratch {
    /// Dijkstra by km over up fibers, with exclusion sets and an optional
    /// region restriction. Returns the fiber sequence. Distances use
    /// integer metres for exact `Ord`.
    fn shortest_path(
        &mut self,
        net: &PhotonicNetwork,
        from: RoadmId,
        to: RoadmId,
        excluded_fibers: &[FiberId],
        excluded_nodes: &[RoadmId],
        allowed: RegionFilter<'_>,
    ) -> Option<Vec<FiberId>> {
        use std::cmp::Reverse;

        let nodes = net.roadm_count();
        let fibers = net.fiber_count();
        if self.dist.len() < nodes {
            self.dist.resize(nodes, 0);
            self.dist_stamp.resize(nodes, 0);
            self.prev.resize(nodes, (RoadmId::new(0), FiberId::new(0)));
            self.prev_stamp.resize(nodes, 0);
            self.node_excluded.resize(nodes, 0);
        }
        if self.fiber_excluded.len() < fibers {
            self.fiber_excluded.resize(fibers, 0);
        }
        self.stamp += 1;
        let stamp = self.stamp;
        for f in excluded_fibers {
            self.fiber_excluded[f.index()] = stamp;
        }
        for n in excluded_nodes {
            self.node_excluded[n.index()] = stamp;
        }
        self.heap.clear();
        self.dist[from.index()] = 0;
        self.dist_stamp[from.index()] = stamp;
        self.heap.push(Reverse((0u64, from)));
        while let Some(Reverse((d, n))) = self.heap.pop() {
            if n == to {
                break;
            }
            if self.dist_stamp[n.index()] == stamp && self.dist[n.index()] < d {
                continue; // stale heap entry
            }
            for &(fid, m) in net.neighbors(n) {
                if self.fiber_excluded[fid.index()] == stamp
                    || self.node_excluded[m.index()] == stamp
                    || !net.fiber(fid).is_up()
                {
                    continue;
                }
                if let Some((map, ra, rb)) = allowed {
                    if !map.admits(m, ra, rb) {
                        continue;
                    }
                }
                let nd = d + (net.fiber(fid).length_km() * 1000.0) as u64;
                let mi = m.index();
                if self.dist_stamp[mi] != stamp || nd < self.dist[mi] {
                    self.dist[mi] = nd;
                    self.dist_stamp[mi] = stamp;
                    self.prev[mi] = (n, fid);
                    self.prev_stamp[mi] = stamp;
                    self.heap.push(Reverse((nd, m)));
                }
            }
        }
        if self.prev_stamp[to.index()] != stamp && from != to {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, f) = self.prev[cur.index()];
            path.push(f);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Configuration of the RWA engine.
#[derive(Debug, Clone, Copy)]
pub struct RwaConfig {
    /// How many candidate paths Yen's search produces.
    pub k_paths: usize,
    /// The reach model used for regen insertion.
    pub reach: ReachModel,
    /// Serve repeated `(src, dst, k)` route queries from the epoch-keyed
    /// cache. Results are identical either way (the cache is invalidated
    /// by any topology change); disabling only costs recomputation.
    pub use_route_cache: bool,
    /// Upper bound on resident route-cache entries. When full, the
    /// least-recently-used eighth of the entries (stale-epoch entries
    /// first) is evicted in one pass. Eviction only costs recomputation —
    /// results stay bit-identical — but keeps memory bounded on plants
    /// where the pair count dwarfs the working set.
    pub route_cache_capacity: usize,
}

impl Default for RwaConfig {
    fn default() -> Self {
        RwaConfig {
            k_paths: 4,
            reach: ReachModel::default(),
            use_route_cache: true,
            route_cache_capacity: 8_192,
        }
    }
}

/// The path-computation engine: reusable Dijkstra scratch plus a route
/// cache keyed by `(src, dst, k)` and validated against the network's
/// [topology epoch](PhotonicNetwork::topology_epoch). A cached entry is
/// served only while the epoch is unchanged, so invalidation is free and
/// results are bit-identical with the cache on or off.
///
/// The free functions [`k_shortest_paths`], [`plan_wavelength`] and
/// [`disjoint_pair`] construct a throwaway engine per call; long-lived
/// callers (the controller) own one and amortise both the scratch buffers
/// and the cache across requests.
pub struct PathEngine {
    scratch: DijkstraScratch,
    cache: std::collections::HashMap<(RoadmId, RoadmId, usize), CacheEntry>,
    /// Monotonic access counter; every cache touch stamps the entry, so
    /// LRU eviction has a deterministic total order regardless of hash
    /// iteration order.
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Installed (validated) region partition, if any.
    region_map: Option<RegionMap>,
}

impl Default for PathEngine {
    fn default() -> Self {
        PathEngine {
            scratch: DijkstraScratch::default(),
            cache: std::collections::HashMap::new(),
            tick: 0,
            capacity: RwaConfig::default().route_cache_capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            region_map: None,
        }
    }
}

impl std::fmt::Debug for PathEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathEngine")
            .field("cache_entries", &self.cache.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .field("region_map", &self.region_map.is_some())
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct CacheEntry {
    epoch: u64,
    last_used: u64,
    paths: Vec<Vec<FiberId>>,
}

/// Route-cache occupancy and traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteCacheStats {
    /// Queries served from the cache.
    pub hits: u64,
    /// Queries that had to run Yen's search.
    pub misses: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity bound.
    pub capacity: usize,
}

impl RouteCacheStats {
    /// Hit rate in [0, 1]; 0 when no queries have been made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl PathEngine {
    /// A fresh engine with empty scratch and cache.
    pub fn new() -> PathEngine {
        PathEngine::default()
    }

    /// `(cache hits, cache misses)` since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Full route-cache counters (hits, misses, evictions, occupancy).
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        RouteCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.cache.len(),
            capacity: self.capacity,
        }
    }

    /// Publish the route-cache counters into a metrics family registry
    /// (`rwa_route_cache_events_total{event=…}` counters plus
    /// `rwa_route_cache_entries` / `_capacity` gauges). Adds the current
    /// totals, so hand it a freshly scraped registry.
    pub fn export_cache_metrics(&self, reg: &mut simcore::metrics::FamilyRegistry) {
        let s = self.route_cache_stats();
        reg.counter("rwa_route_cache_events_total", &[("event", "hit")])
            .add(s.hits);
        reg.counter("rwa_route_cache_events_total", &[("event", "miss")])
            .add(s.misses);
        reg.counter("rwa_route_cache_events_total", &[("event", "eviction")])
            .add(s.evictions);
        reg.gauge("rwa_route_cache_entries", &[])
            .set(s.entries as f64);
        reg.gauge("rwa_route_cache_capacity", &[])
            .set(s.capacity as f64);
    }

    /// Bound the route cache to `capacity` resident entries (evicts
    /// immediately if already above the new bound).
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        if self.cache.len() > self.capacity {
            // No live epoch in hand: treat every entry as current and
            // evict purely by recency.
            self.evict_to_fit(u64::MAX);
        }
    }

    /// Install a region partition after proving the single-gateway
    /// invariant against `net`; path search is then restricted to the
    /// endpoint regions plus the backbone (identical results, smaller
    /// search space — see [`RegionMap`]).
    pub fn install_region_map(
        &mut self,
        net: &PhotonicNetwork,
        map: RegionMap,
    ) -> Result<(), String> {
        map.validate(net)?;
        self.region_map = Some(map);
        Ok(())
    }

    /// The installed region partition, if any.
    pub fn region_map(&self) -> Option<&RegionMap> {
        self.region_map.as_ref()
    }

    /// A cold twin: empty scratch and cache, same capacity bound and
    /// region partition. What controller fork/failover uses — derived
    /// engine state is rebuilt on demand, configuration carries over.
    pub fn fresh_like(&self) -> PathEngine {
        PathEngine {
            capacity: self.capacity,
            region_map: self.region_map.clone(),
            ..PathEngine::default()
        }
    }

    /// Evict least-recently-used entries (stale-epoch entries first) so
    /// at least one slot is free; evicts in batches of ⅛ capacity so the
    /// O(entries) selection scan amortises across insertions.
    fn evict_to_fit(&mut self, current_epoch: u64) {
        let target = self.capacity.saturating_sub(self.capacity / 8).max(1) - 1;
        if self.cache.len() <= target {
            return;
        }
        let mut victims: Vec<(bool, u64, (RoadmId, RoadmId, usize))> = self
            .cache
            .iter()
            .map(|(k, e)| (e.epoch == current_epoch, e.last_used, *k))
            .collect();
        // Stale entries first (`false < true`), then oldest tick. Ticks
        // are unique, so the order — and therefore the evicted set — is
        // deterministic regardless of hash iteration order.
        victims.sort_unstable();
        for (_, _, k) in victims.iter().take(self.cache.len() - target) {
            self.cache.remove(k);
            self.evictions += 1;
        }
    }

    /// Yen's algorithm: up to `k` loop-free shortest paths by km,
    /// optionally served from the route cache.
    pub fn k_shortest_paths(
        &mut self,
        net: &PhotonicNetwork,
        from: RoadmId,
        to: RoadmId,
        k: usize,
        use_cache: bool,
    ) -> Vec<Vec<FiberId>> {
        if !use_cache {
            return self.yen(net, from, to, k);
        }
        let epoch = net.topology_epoch();
        self.tick += 1;
        if let Some(e) = self.cache.get_mut(&(from, to, k)) {
            if e.epoch == epoch {
                e.last_used = self.tick;
                self.hits += 1;
                return e.paths.clone();
            }
        }
        self.misses += 1;
        let paths = self.yen(net, from, to, k);
        if self.cache.len() >= self.capacity && !self.cache.contains_key(&(from, to, k)) {
            self.evict_to_fit(epoch);
        }
        self.cache.insert(
            (from, to, k),
            CacheEntry {
                epoch,
                last_used: self.tick,
                paths: paths.clone(),
            },
        );
        paths
    }

    /// Yen's k-shortest-paths proper: spur paths are generated off each
    /// accepted path, deduplicated through a hash set, and ranked in a
    /// min-heap by `(metres, hops, fiber sequence)` — no linear
    /// membership scans, no re-sorting per iteration.
    fn yen(
        &mut self,
        net: &PhotonicNetwork,
        from: RoadmId,
        to: RoadmId,
        k: usize,
    ) -> Vec<Vec<FiberId>> {
        use std::cmp::Reverse;
        use std::collections::{BinaryHeap, HashSet};

        // Restrict the search to the endpoint regions + backbone when a
        // partition is installed (field access keeps the borrow disjoint
        // from the scratch buffers).
        let allowed: RegionFilter<'_> = self
            .region_map
            .as_ref()
            .map(|m| (m, m.region(from), m.region(to)));
        let mut result: Vec<Vec<FiberId>> = Vec::new();
        let Some(first) = self.scratch.shortest_path(net, from, to, &[], &[], allowed) else {
            return result;
        };
        // Every path ever generated (accepted or still a candidate):
        // spur-fiber exclusion consults it, and membership checks are O(1).
        let mut seen: HashSet<Vec<FiberId>> = HashSet::new();
        seen.insert(first.clone());
        result.push(first);
        let mut candidates: BinaryHeap<Reverse<(u64, usize, Vec<FiberId>)>> = BinaryHeap::new();
        let mut excluded_fibers: Vec<FiberId> = Vec::new();
        while result.len() < k {
            let last = result.last().unwrap().clone();
            let last_nodes = net.node_sequence(from, &last);
            for spur_idx in 0..last.len() {
                let spur_node = last_nodes[spur_idx];
                let root = &last[..spur_idx];
                // Exclude fibers that would regenerate a known path from
                // this root. (Set iteration order varies, but exclusion is
                // by membership, so the outcome is deterministic.)
                excluded_fibers.clear();
                for p in &seen {
                    if p.len() > spur_idx && p[..spur_idx] == *root {
                        excluded_fibers.push(p[spur_idx]);
                    }
                }
                // Exclude root nodes to keep paths loop-free.
                let excluded_nodes = &last_nodes[..spur_idx];
                if let Some(spur) = self.scratch.shortest_path(
                    net,
                    spur_node,
                    to,
                    &excluded_fibers,
                    excluded_nodes,
                    allowed,
                ) {
                    let mut total = root.to_vec();
                    total.extend(spur);
                    if !seen.contains(&total) {
                        seen.insert(total.clone());
                        let metres = (net.path_km(&total) * 1000.0) as u64;
                        candidates.push(Reverse((metres, total.len(), total)));
                    }
                }
            }
            // Shortest candidate next (by km, then hop count, then fiber
            // sequence for a total deterministic order).
            match candidates.pop() {
                Some(Reverse((_, _, path))) => result.push(path),
                None => break,
            }
        }
        result
    }

    /// Produce a provisionable plan for a wavelength connection of `rate`
    /// between `from` and `to`, avoiding `excluded` fibers (used by
    /// restoration and bridge-and-roll to force disjointness).
    ///
    /// Resources are only *identified*, not claimed — claiming is the
    /// controller's job, under its admission lock.
    pub fn plan_wavelength(
        &mut self,
        net: &PhotonicNetwork,
        cfg: &RwaConfig,
        from: RoadmId,
        to: RoadmId,
        rate: LineRate,
        excluded: &[FiberId],
    ) -> Result<WavelengthPlan, RwaError> {
        let mut candidates = if excluded.is_empty() {
            self.k_shortest_paths(net, from, to, cfg.k_paths, cfg.use_route_cache)
        } else {
            // Route around exclusions: prune then search. (Not cached —
            // the exclusion set is part of the query.) Exclusions only
            // remove edges, so the region restriction stays exact.
            let allowed: RegionFilter<'_> = self
                .region_map
                .as_ref()
                .map(|m| (m, m.region(from), m.region(to)));
            match self
                .scratch
                .shortest_path(net, from, to, excluded, &[], allowed)
            {
                Some(p) => vec![p],
                None => Vec::new(),
            }
        };
        candidates.retain(|p| !p.is_empty());
        if candidates.is_empty() {
            return Err(RwaError::NoRoute);
        }
        let mut examined = 0;
        for path in &candidates {
            examined += 1;
            // Wavelength continuity.
            let Some(lambda) = net.first_free_lambda(path) else {
                continue;
            };
            // Transponders at both ends.
            let src_pool = net.idle_ots_at(from, rate);
            let dst_pool = net.idle_ots_at(to, rate);
            let (Some(ot_src), Some(ot_dst)) = (src_pool.first(), dst_pool.first()) else {
                continue;
            };
            // Reach: insert regens where needed, if the pools allow.
            let hop_km = net.hop_lengths(path);
            let Some(points) = cfg.reach.regen_points(rate, &hop_km) else {
                continue;
            };
            let nodes = net.node_sequence(from, path);
            let mut regens = Vec::new();
            let mut ok = true;
            let mut used_at_node: std::collections::HashMap<RoadmId, usize> =
                std::collections::HashMap::new();
            for p in &points {
                let node = nodes[p + 1];
                let pool = net.free_regens_at(node, rate);
                let used = used_at_node.entry(node).or_insert(0);
                if *used < pool.len() {
                    regens.push(pool[*used]);
                    *used += 1;
                } else {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            return Ok(WavelengthPlan {
                path: path.clone(),
                lambda,
                ot_src: *ot_src,
                ot_dst: *ot_dst,
                regens,
            });
        }
        Err(RwaError::Blocked {
            candidates: examined,
        })
    }

    /// Find a link-disjoint pair of paths (working, protect) between two
    /// nodes, or `None` if the topology cannot supply one.
    pub fn disjoint_pair(
        &mut self,
        net: &PhotonicNetwork,
        from: RoadmId,
        to: RoadmId,
    ) -> Option<(Vec<FiberId>, Vec<FiberId>)> {
        let allowed: RegionFilter<'_> = self
            .region_map
            .as_ref()
            .map(|m| (m, m.region(from), m.region(to)));
        let working = self
            .scratch
            .shortest_path(net, from, to, &[], &[], allowed)?;
        let protect = self
            .scratch
            .shortest_path(net, from, to, &working, &[], allowed)?;
        Some((working, protect))
    }
}

/// Yen's algorithm: up to `k` loop-free shortest paths by km.
/// (Convenience wrapper over a throwaway [`PathEngine`].)
pub fn k_shortest_paths(
    net: &PhotonicNetwork,
    from: RoadmId,
    to: RoadmId,
    k: usize,
) -> Vec<Vec<FiberId>> {
    PathEngine::new().k_shortest_paths(net, from, to, k, false)
}

/// Produce a provisionable plan for a wavelength connection of `rate`
/// between `from` and `to`, avoiding `excluded` fibers.
/// (Convenience wrapper over a throwaway [`PathEngine`]; see
/// [`PathEngine::plan_wavelength`].)
pub fn plan_wavelength(
    net: &PhotonicNetwork,
    cfg: &RwaConfig,
    from: RoadmId,
    to: RoadmId,
    rate: LineRate,
    excluded: &[FiberId],
) -> Result<WavelengthPlan, RwaError> {
    PathEngine::new().plan_wavelength(net, cfg, from, to, rate, excluded)
}

/// Find a link-disjoint pair of paths (working, protect) between two
/// nodes, or `None` if the topology cannot supply one.
/// (Convenience wrapper over a throwaway [`PathEngine`].)
pub fn disjoint_pair(
    net: &PhotonicNetwork,
    from: RoadmId,
    to: RoadmId,
) -> Option<(Vec<FiberId>, Vec<FiberId>)> {
    PathEngine::new().disjoint_pair(net, from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonic::PhotonicNetwork;

    #[test]
    fn yen_orders_testbed_paths_by_length() {
        let (net, ids) = PhotonicNetwork::testbed(2);
        let paths = k_shortest_paths(&net, ids.i, ids.iv, 3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0], vec![ids.f_i_iv]); // 80 km
        assert_eq!(paths[1].len(), 2); // I–III–IV, 160 km
        assert_eq!(paths[2].len(), 3); // I–II–III–IV, 240 km
        assert_eq!(
            net.node_sequence(ids.i, &paths[2]),
            vec![ids.i, ids.ii, ids.iii, ids.iv]
        );
    }

    #[test]
    fn yen_respects_km_not_hop_count() {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        let c = net.add_roadm("c");
        // Direct but long vs two short hops.
        net.link(a, b, 1000.0).unwrap();
        net.link(a, c, 100.0).unwrap();
        net.link(c, b, 100.0).unwrap();
        let paths = k_shortest_paths(&net, a, b, 2);
        assert_eq!(paths[0].len(), 2, "two short hops beat one long");
        assert_eq!(paths[1].len(), 1);
    }

    #[test]
    fn plan_prefers_direct_route_and_first_fit() {
        let (net, ids) = PhotonicNetwork::testbed(2);
        let plan = plan_wavelength(
            &net,
            &RwaConfig::default(),
            ids.i,
            ids.iv,
            LineRate::Gbps10,
            &[],
        )
        .unwrap();
        assert_eq!(plan.path, vec![ids.f_i_iv]);
        assert_eq!(plan.lambda, Wavelength(0));
        assert!(plan.regens.is_empty());
        assert_eq!(plan.hops(), 1);
        assert_eq!(net.transponder(plan.ot_src).location, ids.i);
        assert_eq!(net.transponder(plan.ot_dst).location, ids.iv);
    }

    #[test]
    fn plan_detours_around_exclusions() {
        let (net, ids) = PhotonicNetwork::testbed(2);
        let plan = plan_wavelength(
            &net,
            &RwaConfig::default(),
            ids.i,
            ids.iv,
            LineRate::Gbps10,
            &[ids.f_i_iv],
        )
        .unwrap();
        assert_eq!(plan.path.len(), 2);
        assert!(!plan.path.contains(&ids.f_i_iv));
    }

    #[test]
    fn plan_fails_without_ots() {
        let (net, ids) = PhotonicNetwork::testbed(0);
        let err = plan_wavelength(
            &net,
            &RwaConfig::default(),
            ids.i,
            ids.iv,
            LineRate::Gbps10,
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, RwaError::Blocked { .. }));
    }

    #[test]
    fn plan_no_route_when_disconnected() {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        net.add_transponders(a, LineRate::Gbps10, 1).unwrap();
        net.add_transponders(b, LineRate::Gbps10, 1).unwrap();
        assert_eq!(
            plan_wavelength(&net, &RwaConfig::default(), a, b, LineRate::Gbps10, &[]),
            Err(RwaError::NoRoute)
        );
    }

    #[test]
    fn regens_inserted_on_long_paths() {
        // NSFNET Seattle→Princeton at 40G must regenerate.
        let net = PhotonicNetwork::nsfnet(4, LineRate::Gbps40, 4);
        let from = net.roadm_by_name("Seattle").unwrap();
        let to = net.roadm_by_name("Princeton").unwrap();
        let plan =
            plan_wavelength(&net, &RwaConfig::default(), from, to, LineRate::Gbps40, &[]).unwrap();
        assert!(
            !plan.regens.is_empty(),
            "a coast-to-coast 40G path needs regens"
        );
        // Every claimed regen is at an intermediate node of the path.
        let nodes = net.node_sequence(from, &plan.path);
        for r in &plan.regens {
            let loc = net.regen(*r).location;
            assert!(nodes[1..nodes.len() - 1].contains(&loc));
        }
    }

    #[test]
    fn plan_blocked_without_regens() {
        let net = PhotonicNetwork::nsfnet(4, LineRate::Gbps40, 0);
        let from = net.roadm_by_name("Seattle").unwrap();
        let to = net.roadm_by_name("Princeton").unwrap();
        // With k_paths=1 the only candidate needs regens and has none.
        let cfg = RwaConfig {
            k_paths: 1,
            ..RwaConfig::default()
        };
        assert!(matches!(
            plan_wavelength(&net, &cfg, from, to, LineRate::Gbps40, &[]),
            Err(RwaError::Blocked { .. })
        ));
    }

    #[test]
    fn disjoint_pair_on_testbed() {
        let (net, ids) = PhotonicNetwork::testbed(2);
        let (w, p) = disjoint_pair(&net, ids.i, ids.iv).unwrap();
        assert!(w.iter().all(|f| !p.contains(f)));
        assert_eq!(w, vec![ids.f_i_iv]);
    }

    #[test]
    fn disjoint_pair_none_on_tree() {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        net.link(a, b, 10.0).unwrap();
        assert!(disjoint_pair(&net, a, b).is_none());
    }

    #[test]
    fn route_cache_hits_until_topology_changes() {
        let (mut net, ids) = PhotonicNetwork::testbed(2);
        let mut engine = PathEngine::new();
        let a = engine.k_shortest_paths(&net, ids.i, ids.iv, 3, true);
        assert_eq!(engine.cache_stats(), (0, 1));
        let b = engine.k_shortest_paths(&net, ids.i, ids.iv, 3, true);
        assert_eq!(engine.cache_stats(), (1, 1));
        assert_eq!(a, b);
        // Cached result equals a fresh uncached computation.
        assert_eq!(b, k_shortest_paths(&net, ids.i, ids.iv, 3));
        // Any topology mutation bumps the epoch and invalidates the entry.
        net.fiber_mut(ids.f_i_iv).cut_at(0);
        let c = engine.k_shortest_paths(&net, ids.i, ids.iv, 3, true);
        assert_eq!(engine.cache_stats(), (1, 2));
        assert!(!c.iter().any(|p| p.contains(&ids.f_i_iv)));
        assert_eq!(c, k_shortest_paths(&net, ids.i, ids.iv, 3));
    }

    #[test]
    fn plans_identical_with_cache_on_and_off() {
        let net = PhotonicNetwork::nsfnet(4, LineRate::Gbps10, 2);
        let cached = RwaConfig::default();
        let uncached = RwaConfig {
            use_route_cache: false,
            ..RwaConfig::default()
        };
        let mut engine = PathEngine::new();
        for (from_name, to_name) in [
            ("Seattle", "Princeton"),
            ("PaloAlto", "Ithaca"),
            ("Seattle", "Princeton"), // repeat → served from cache
        ] {
            let from = net.roadm_by_name(from_name).unwrap();
            let to = net.roadm_by_name(to_name).unwrap();
            let with = engine.plan_wavelength(&net, &cached, from, to, LineRate::Gbps10, &[]);
            let without = engine.plan_wavelength(&net, &uncached, from, to, LineRate::Gbps10, &[]);
            assert_eq!(with, without);
        }
        let (hits, _) = engine.cache_stats();
        assert!(hits >= 1, "repeat query must hit the cache");
    }

    #[test]
    fn yen_scratch_reuse_is_clean_across_queries() {
        // Back-to-back queries on the same engine must not leak exclusion
        // marks or distances between runs.
        let net = PhotonicNetwork::nsfnet(2, LineRate::Gbps10, 0);
        let mut engine = PathEngine::new();
        for (a, b) in [("Seattle", "Princeton"), ("SanDiego", "Ithaca")] {
            let from = net.roadm_by_name(a).unwrap();
            let to = net.roadm_by_name(b).unwrap();
            let fresh = PathEngine::new().k_shortest_paths(&net, from, to, 4, false);
            let reused = engine.k_shortest_paths(&net, from, to, 4, false);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn cache_stays_bounded_and_counts_evictions() {
        let net = PhotonicNetwork::nsfnet(2, LineRate::Gbps10, 0);
        let mut engine = PathEngine::new();
        engine.set_cache_capacity(4);
        let nodes: Vec<RoadmId> = net.roadm_ids().collect();
        for &a in &nodes {
            for &b in &nodes {
                if a != b {
                    engine.k_shortest_paths(&net, a, b, 2, true);
                }
            }
        }
        let s = engine.route_cache_stats();
        assert!(s.entries <= 4, "{} entries exceed capacity", s.entries);
        assert_eq!(s.capacity, 4);
        assert!(s.evictions > 0, "14×13 pairs through 4 slots must evict");
        assert_eq!(s.misses, 14 * 13, "distinct pairs all miss");
        // Evicted-and-recomputed results still match a fresh engine.
        let a = nodes[0];
        let b = nodes[7];
        assert_eq!(
            engine.k_shortest_paths(&net, a, b, 2, true),
            PathEngine::new().k_shortest_paths(&net, a, b, 2, false)
        );
    }

    #[test]
    fn eviction_prefers_stale_epochs_then_lru() {
        let (mut net, ids) = PhotonicNetwork::testbed(2);
        let mut engine = PathEngine::new();
        engine.set_cache_capacity(2);
        engine.k_shortest_paths(&net, ids.i, ids.iv, 1, true);
        // Epoch bump makes the first entry stale.
        net.fiber_mut(ids.f_i_iv);
        engine.k_shortest_paths(&net, ids.i, ids.iii, 1, true);
        engine.k_shortest_paths(&net, ids.i, ids.ii, 1, true); // evicts
        let s = engine.route_cache_stats();
        assert!(s.evictions >= 1);
        assert!(s.entries <= 2);
        // The live (i, iii) entry survived the stale-first policy.
        engine.k_shortest_paths(&net, ids.i, ids.iii, 1, true);
        assert!(engine.route_cache_stats().hits >= 1);
    }

    #[test]
    fn cache_metrics_export_matches_stats() {
        let (net, ids) = PhotonicNetwork::testbed(2);
        let mut engine = PathEngine::new();
        engine.k_shortest_paths(&net, ids.i, ids.iv, 2, true);
        engine.k_shortest_paths(&net, ids.i, ids.iv, 2, true);
        let mut reg = simcore::metrics::FamilyRegistry::new();
        engine.export_cache_metrics(&mut reg);
        let get = |event| {
            reg.get_counter("rwa_route_cache_events_total", &[("event", event)])
                .unwrap()
                .get()
        };
        assert_eq!(get("hit"), 1);
        assert_eq!(get("miss"), 1);
        assert_eq!(get("eviction"), 0);
        assert_eq!(
            reg.get_gauge("rwa_route_cache_entries", &[]).unwrap().get(),
            1.0
        );
    }

    #[test]
    fn region_restricted_search_matches_global() {
        let plant = photonic::generate(&photonic::GeneratorConfig::with_target_roadms(100, 21));
        let map = RegionMap::new(plant.region_of.clone());
        assert_eq!(map.validate(&plant.net), Ok(()));
        let mut global = PathEngine::new();
        let mut regional = PathEngine::new();
        regional
            .install_region_map(&plant.net, map)
            .expect("valid map installs");
        let cfg = RwaConfig::default();
        // Intra-region, cross-region, and hub-terminated pairs.
        let last = plant.interior.len() - 1;
        let pairs = [
            (plant.interior[0][0], plant.interior[0][4]),
            (plant.interior[0][1], plant.interior[last][3]),
            (plant.interior[last][2], plant.interior[0][5]),
            (plant.gateways[0], plant.interior[last][0]),
            (plant.gateways[0], plant.gateways[last]),
        ];
        for (a, b) in pairs {
            assert_eq!(
                regional.k_shortest_paths(&plant.net, a, b, 4, false),
                global.k_shortest_paths(&plant.net, a, b, 4, false),
                "restricted Yen diverged for {a}→{b}"
            );
            assert_eq!(
                regional.plan_wavelength(&plant.net, &cfg, a, b, LineRate::Gbps10, &[]),
                global.plan_wavelength(&plant.net, &cfg, a, b, LineRate::Gbps10, &[]),
                "restricted plan diverged for {a}→{b}"
            );
            assert_eq!(
                regional.disjoint_pair(&plant.net, a, b),
                global.disjoint_pair(&plant.net, a, b),
                "restricted disjoint pair diverged for {a}→{b}"
            );
        }
    }

    #[test]
    fn invalid_region_maps_are_rejected() {
        let (net, _ids) = PhotonicNetwork::testbed(2);
        let mut engine = PathEngine::new();
        // Wrong coverage.
        assert!(engine
            .install_region_map(&net, RegionMap::new(vec![0, 0]))
            .is_err());
        // Two interiors directly linked (testbed is a mesh, any split of
        // the four nodes into two regions crosses interiors somewhere).
        assert!(engine
            .install_region_map(&net, RegionMap::new(vec![0, 0, 1, 1]))
            .is_err());
        assert!(engine.region_map().is_none());
    }

    #[test]
    fn fresh_like_keeps_config_drops_state() {
        let plant = photonic::generate(&photonic::GeneratorConfig::with_target_roadms(14, 9));
        let mut engine = PathEngine::new();
        engine.set_cache_capacity(17);
        engine
            .install_region_map(&plant.net, RegionMap::new(plant.region_of.clone()))
            .unwrap();
        engine.k_shortest_paths(
            &plant.net,
            plant.interior[0][0],
            plant.interior[0][1],
            2,
            true,
        );
        let twin = engine.fresh_like();
        let s = twin.route_cache_stats();
        assert_eq!((s.hits, s.misses, s.entries, s.capacity), (0, 0, 0, 17));
        assert!(twin.region_map().is_some());
    }

    #[test]
    fn exhausted_lambdas_block() {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_40);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        let f = net.link(a, b, 10.0).unwrap();
        net.add_transponders(a, LineRate::Gbps10, 2).unwrap();
        net.add_transponders(b, LineRate::Gbps10, 2).unwrap();
        // Fill all 40 channels on the single fiber.
        let da = net.roadm(a).degree_to(f).unwrap();
        let db = net.roadm(b).degree_to(f).unwrap();
        for w in 0..40 {
            let pa = net.roadm_mut(a).add_port();
            net.roadm_mut(a)
                .attach_transponder(pa, TransponderId::new(1000 + w as u32));
            net.roadm_mut(a)
                .connect_add_drop(pa, Wavelength(w), da)
                .unwrap();
            let pb = net.roadm_mut(b).add_port();
            net.roadm_mut(b)
                .attach_transponder(pb, TransponderId::new(2000 + w as u32));
            net.roadm_mut(b)
                .connect_add_drop(pb, Wavelength(w), db)
                .unwrap();
        }
        assert!(matches!(
            plan_wavelength(&net, &RwaConfig::default(), a, b, LineRate::Gbps10, &[]),
            Err(RwaError::Blocked { .. })
        ));
    }
}
