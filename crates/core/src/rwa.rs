//! Routing and wavelength assignment (RWA).
//!
//! The controller's path-selection engine:
//!
//! - **Routing** — Yen's k-shortest-paths over the up-fiber graph,
//!   weighted by route kilometres (carrier practice: distance ≈ latency ≈
//!   cost). Candidates are examined in order until one passes wavelength,
//!   transponder, reach and regen checks, so the controller naturally
//!   prefers short paths but degrades gracefully under contention.
//! - **Wavelength assignment** — first-fit with the continuity
//!   constraint: one wavelength free on *every* fiber of the path.
//!   (First-fit is the classic low-blocking heuristic; the ROADM layer's
//!   conflict detection guarantees safety regardless.)
//! - **Reach** — paths whose transparent length exceeds the rate's reach
//!   budget get regens inserted at intermediate nodes, consuming from the
//!   per-node regen pools ([`photonic::ReachModel`] decides where).
//!   Regens here are same-wavelength 3R devices: wavelength conversion is
//!   *not* modelled, so continuity holds end-to-end.
//! - **Disjoint paths** — for 1+1 protection, bridge-and-roll and
//!   shared-mesh backup planning, a link-disjoint second path is found by
//!   pruning the first path's fibers and re-routing.

use photonic::{
    FiberId, LineRate, PhotonicNetwork, ReachModel, RegenId, RoadmId, TransponderId, Wavelength,
};

/// A fully resolved wavelength-connection plan, ready to provision.
#[derive(Debug, Clone, PartialEq)]
pub struct WavelengthPlan {
    /// End-to-end fiber sequence.
    pub path: Vec<FiberId>,
    /// The assigned wavelength (continuity holds end-to-end).
    pub lambda: Wavelength,
    /// Transponder at the source node.
    pub ot_src: TransponderId,
    /// Transponder at the destination node.
    pub ot_dst: TransponderId,
    /// Regens claimed at intermediate nodes (reach extension).
    pub regens: Vec<RegenId>,
}

impl WavelengthPlan {
    /// Number of hops (fibers) in the path.
    pub fn hops(&self) -> usize {
        self.path.len()
    }
}

/// Why no plan could be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RwaError {
    /// No route exists between the endpoints over up fibers.
    NoRoute,
    /// Routes exist, but none passed wavelength + OT + regen checks.
    /// Carries the number of candidate paths examined.
    Blocked {
        /// Candidates that were examined and rejected.
        candidates: usize,
    },
}

impl std::fmt::Display for RwaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RwaError::NoRoute => write!(f, "no route"),
            RwaError::Blocked { candidates } => {
                write!(f, "blocked after {candidates} candidate paths")
            }
        }
    }
}

impl std::error::Error for RwaError {}

/// Dijkstra by km over up fibers, with an exclusion set.
/// Returns the fiber sequence.
fn shortest_path_km(
    net: &PhotonicNetwork,
    from: RoadmId,
    to: RoadmId,
    excluded_fibers: &[FiberId],
    excluded_nodes: &[RoadmId],
) -> Option<Vec<FiberId>> {
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};

    // f64 km as integer metres for Ord.
    let mut dist: HashMap<RoadmId, u64> = HashMap::new();
    let mut prev: HashMap<RoadmId, (RoadmId, FiberId)> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(from, 0);
    heap.push(Reverse((0u64, from)));
    while let Some(Reverse((d, n))) = heap.pop() {
        if n == to {
            break;
        }
        if dist.get(&n).copied().unwrap_or(u64::MAX) < d {
            continue;
        }
        for (fid, m) in net.neighbors(n) {
            if !net.fiber(fid).is_up()
                || excluded_fibers.contains(&fid)
                || excluded_nodes.contains(&m)
            {
                continue;
            }
            let nd = d + (net.fiber(fid).length_km() * 1000.0) as u64;
            if nd < dist.get(&m).copied().unwrap_or(u64::MAX) {
                dist.insert(m, nd);
                prev.insert(m, (n, fid));
                heap.push(Reverse((nd, m)));
            }
        }
    }
    if !prev.contains_key(&to) && from != to {
        return None;
    }
    let mut path = Vec::new();
    let mut cur = to;
    while cur != from {
        let (p, f) = prev[&cur];
        path.push(f);
        cur = p;
    }
    path.reverse();
    Some(path)
}

/// Yen's algorithm: up to `k` loop-free shortest paths by km.
pub fn k_shortest_paths(
    net: &PhotonicNetwork,
    from: RoadmId,
    to: RoadmId,
    k: usize,
) -> Vec<Vec<FiberId>> {
    let mut result: Vec<Vec<FiberId>> = Vec::new();
    let Some(first) = shortest_path_km(net, from, to, &[], &[]) else {
        return result;
    };
    result.push(first);
    let mut candidates: Vec<Vec<FiberId>> = Vec::new();
    while result.len() < k {
        let last = result.last().unwrap().clone();
        let last_nodes = net.node_sequence(from, &last);
        for spur_idx in 0..last.len() {
            let spur_node = last_nodes[spur_idx];
            let root: Vec<FiberId> = last[..spur_idx].to_vec();
            // Exclude fibers that would repeat a known path with this root.
            let mut excluded_fibers: Vec<FiberId> = Vec::new();
            for p in result.iter().chain(candidates.iter()) {
                if p.len() > spur_idx && p[..spur_idx] == root[..] {
                    excluded_fibers.push(p[spur_idx]);
                }
            }
            // Exclude root nodes to keep paths loop-free.
            let excluded_nodes: Vec<RoadmId> = last_nodes[..spur_idx].to_vec();
            if let Some(spur) =
                shortest_path_km(net, spur_node, to, &excluded_fibers, &excluded_nodes)
            {
                let mut total = root;
                total.extend(spur);
                if !result.contains(&total) && !candidates.contains(&total) {
                    candidates.push(total);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Shortest candidate next (by km, then hop count for determinism).
        candidates.sort_by(|a, b| {
            let ka = net.path_km(a);
            let kb = net.path_km(b);
            ka.partial_cmp(&kb).unwrap().then(a.len().cmp(&b.len()))
        });
        result.push(candidates.remove(0));
    }
    result
}

/// Configuration of the RWA engine.
#[derive(Debug, Clone, Copy)]
pub struct RwaConfig {
    /// How many candidate paths Yen's search produces.
    pub k_paths: usize,
    /// The reach model used for regen insertion.
    pub reach: ReachModel,
}

impl Default for RwaConfig {
    fn default() -> Self {
        RwaConfig {
            k_paths: 4,
            reach: ReachModel::default(),
        }
    }
}

/// Produce a provisionable plan for a wavelength connection of `rate`
/// between `from` and `to`, avoiding `excluded` fibers (used by
/// restoration and bridge-and-roll to force disjointness).
///
/// Resources are only *identified*, not claimed — claiming is the
/// controller's job, under its admission lock.
pub fn plan_wavelength(
    net: &PhotonicNetwork,
    cfg: &RwaConfig,
    from: RoadmId,
    to: RoadmId,
    rate: LineRate,
    excluded: &[FiberId],
) -> Result<WavelengthPlan, RwaError> {
    let mut candidates = if excluded.is_empty() {
        k_shortest_paths(net, from, to, cfg.k_paths)
    } else {
        // Route around exclusions: prune then search.
        match shortest_path_km(net, from, to, excluded, &[]) {
            Some(p) => vec![p],
            None => Vec::new(),
        }
    };
    // Also consider a pruned-graph alternative for each candidate set.
    candidates.retain(|p| !p.is_empty());
    if candidates.is_empty() {
        return Err(RwaError::NoRoute);
    }
    let mut examined = 0;
    for path in &candidates {
        examined += 1;
        // Wavelength continuity.
        let Some(lambda) = net.first_free_lambda(path) else {
            continue;
        };
        // Transponders at both ends.
        let src_pool = net.idle_ots_at(from, rate);
        let dst_pool = net.idle_ots_at(to, rate);
        let (Some(ot_src), Some(ot_dst)) = (src_pool.first(), dst_pool.first()) else {
            continue;
        };
        // Reach: insert regens where needed, if the pools allow.
        let hop_km = net.hop_lengths(path);
        let Some(points) = cfg.reach.regen_points(rate, &hop_km) else {
            continue;
        };
        let nodes = net.node_sequence(from, path);
        let mut regens = Vec::new();
        let mut ok = true;
        let mut used_at_node: std::collections::HashMap<RoadmId, usize> =
            std::collections::HashMap::new();
        for p in &points {
            let node = nodes[p + 1];
            let pool = net.free_regens_at(node, rate);
            let used = used_at_node.entry(node).or_insert(0);
            if *used < pool.len() {
                regens.push(pool[*used]);
                *used += 1;
            } else {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        return Ok(WavelengthPlan {
            path: path.clone(),
            lambda,
            ot_src: *ot_src,
            ot_dst: *ot_dst,
            regens,
        });
    }
    Err(RwaError::Blocked {
        candidates: examined,
    })
}

/// Find a link-disjoint pair of paths (working, protect) between two
/// nodes, or `None` if the topology cannot supply one.
pub fn disjoint_pair(
    net: &PhotonicNetwork,
    from: RoadmId,
    to: RoadmId,
) -> Option<(Vec<FiberId>, Vec<FiberId>)> {
    let working = shortest_path_km(net, from, to, &[], &[])?;
    let protect = shortest_path_km(net, from, to, &working, &[])?;
    Some((working, protect))
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonic::PhotonicNetwork;

    #[test]
    fn yen_orders_testbed_paths_by_length() {
        let (net, ids) = PhotonicNetwork::testbed(2);
        let paths = k_shortest_paths(&net, ids.i, ids.iv, 3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0], vec![ids.f_i_iv]); // 80 km
        assert_eq!(paths[1].len(), 2); // I–III–IV, 160 km
        assert_eq!(paths[2].len(), 3); // I–II–III–IV, 240 km
        assert_eq!(
            net.node_sequence(ids.i, &paths[2]),
            vec![ids.i, ids.ii, ids.iii, ids.iv]
        );
    }

    #[test]
    fn yen_respects_km_not_hop_count() {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        let c = net.add_roadm("c");
        // Direct but long vs two short hops.
        net.link(a, b, 1000.0).unwrap();
        net.link(a, c, 100.0).unwrap();
        net.link(c, b, 100.0).unwrap();
        let paths = k_shortest_paths(&net, a, b, 2);
        assert_eq!(paths[0].len(), 2, "two short hops beat one long");
        assert_eq!(paths[1].len(), 1);
    }

    #[test]
    fn plan_prefers_direct_route_and_first_fit() {
        let (net, ids) = PhotonicNetwork::testbed(2);
        let plan = plan_wavelength(
            &net,
            &RwaConfig::default(),
            ids.i,
            ids.iv,
            LineRate::Gbps10,
            &[],
        )
        .unwrap();
        assert_eq!(plan.path, vec![ids.f_i_iv]);
        assert_eq!(plan.lambda, Wavelength(0));
        assert!(plan.regens.is_empty());
        assert_eq!(plan.hops(), 1);
        assert_eq!(net.transponder(plan.ot_src).location, ids.i);
        assert_eq!(net.transponder(plan.ot_dst).location, ids.iv);
    }

    #[test]
    fn plan_detours_around_exclusions() {
        let (net, ids) = PhotonicNetwork::testbed(2);
        let plan = plan_wavelength(
            &net,
            &RwaConfig::default(),
            ids.i,
            ids.iv,
            LineRate::Gbps10,
            &[ids.f_i_iv],
        )
        .unwrap();
        assert_eq!(plan.path.len(), 2);
        assert!(!plan.path.contains(&ids.f_i_iv));
    }

    #[test]
    fn plan_fails_without_ots() {
        let (net, ids) = PhotonicNetwork::testbed(0);
        let err = plan_wavelength(
            &net,
            &RwaConfig::default(),
            ids.i,
            ids.iv,
            LineRate::Gbps10,
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, RwaError::Blocked { .. }));
    }

    #[test]
    fn plan_no_route_when_disconnected() {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        net.add_transponders(a, LineRate::Gbps10, 1).unwrap();
        net.add_transponders(b, LineRate::Gbps10, 1).unwrap();
        assert_eq!(
            plan_wavelength(&net, &RwaConfig::default(), a, b, LineRate::Gbps10, &[]),
            Err(RwaError::NoRoute)
        );
    }

    #[test]
    fn regens_inserted_on_long_paths() {
        // NSFNET Seattle→Princeton at 40G must regenerate.
        let net = PhotonicNetwork::nsfnet(4, LineRate::Gbps40, 4);
        let from = net.roadm_by_name("Seattle").unwrap();
        let to = net.roadm_by_name("Princeton").unwrap();
        let plan =
            plan_wavelength(&net, &RwaConfig::default(), from, to, LineRate::Gbps40, &[]).unwrap();
        assert!(
            !plan.regens.is_empty(),
            "a coast-to-coast 40G path needs regens"
        );
        // Every claimed regen is at an intermediate node of the path.
        let nodes = net.node_sequence(from, &plan.path);
        for r in &plan.regens {
            let loc = net.regen(*r).location;
            assert!(nodes[1..nodes.len() - 1].contains(&loc));
        }
    }

    #[test]
    fn plan_blocked_without_regens() {
        let net = PhotonicNetwork::nsfnet(4, LineRate::Gbps40, 0);
        let from = net.roadm_by_name("Seattle").unwrap();
        let to = net.roadm_by_name("Princeton").unwrap();
        // With k_paths=1 the only candidate needs regens and has none.
        let cfg = RwaConfig {
            k_paths: 1,
            ..RwaConfig::default()
        };
        assert!(matches!(
            plan_wavelength(&net, &cfg, from, to, LineRate::Gbps40, &[]),
            Err(RwaError::Blocked { .. })
        ));
    }

    #[test]
    fn disjoint_pair_on_testbed() {
        let (net, ids) = PhotonicNetwork::testbed(2);
        let (w, p) = disjoint_pair(&net, ids.i, ids.iv).unwrap();
        assert!(w.iter().all(|f| !p.contains(f)));
        assert_eq!(w, vec![ids.f_i_iv]);
    }

    #[test]
    fn disjoint_pair_none_on_tree() {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        net.link(a, b, 10.0).unwrap();
        assert!(disjoint_pair(&net, a, b).is_none());
    }

    #[test]
    fn exhausted_lambdas_block() {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_40);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        let f = net.link(a, b, 10.0).unwrap();
        net.add_transponders(a, LineRate::Gbps10, 2).unwrap();
        net.add_transponders(b, LineRate::Gbps10, 2).unwrap();
        // Fill all 40 channels on the single fiber.
        let da = net.roadm(a).degree_to(f).unwrap();
        let db = net.roadm(b).degree_to(f).unwrap();
        for w in 0..40 {
            let pa = net.roadm_mut(a).add_port();
            net.roadm_mut(a)
                .attach_transponder(pa, TransponderId::new(1000 + w as u32));
            net.roadm_mut(a)
                .connect_add_drop(pa, Wavelength(w), da)
                .unwrap();
            let pb = net.roadm_mut(b).add_port();
            net.roadm_mut(b)
                .attach_transponder(pb, TransponderId::new(2000 + w as u32));
            net.roadm_mut(b)
                .connect_add_drop(pb, Wavelength(w), db)
                .unwrap();
        }
        assert!(matches!(
            plan_wavelength(&net, &RwaConfig::default(), a, b, LineRate::Gbps10, &[]),
            Err(RwaError::Blocked { .. })
        ));
    }
}
