//! Inventory database snapshots.
//!
//! §2.2 lists "inventory database management" among the controller's
//! responsibilities. The live inventory *is* the controller's state; this
//! module produces the durable, serializable view of it — per-node
//! transponder pools, per-fiber wavelength occupancy, regen usage, OTN
//! trunk fill — which the carrier's OSS would persist and the planning
//! tools consume.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use photonic::TransponderState;

use crate::connection::ConnState;
use crate::controller::Controller;

/// Transponder pool state at one node.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OtPool {
    /// Installed transponders.
    pub total: usize,
    /// Idle and available.
    pub idle: usize,
    /// Tuning or carrying traffic.
    pub in_use: usize,
    /// Failed, awaiting replacement.
    pub failed: usize,
}

/// One fiber's occupancy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiberUsage {
    /// Endpoint names.
    pub between: (String, String),
    /// Total length.
    pub km: f64,
    /// Lit wavelengths.
    pub lit: usize,
    /// Grid capacity.
    pub capacity: usize,
    /// Is it in service?
    pub up: bool,
}

/// A point-in-time snapshot of the controller's inventory database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InventorySnapshot {
    /// Per-node (by name) transponder pools.
    pub ot_pools: BTreeMap<String, OtPool>,
    /// Per-fiber occupancy, keyed by fiber id string.
    pub fibers: BTreeMap<String, FiberUsage>,
    /// Regens: (total, in use).
    pub regens: (usize, usize),
    /// Connections by state name.
    pub connections: BTreeMap<String, usize>,
    /// Trunks: (total, ready).
    pub trunks: (usize, usize),
}

impl InventorySnapshot {
    /// Capture the current inventory.
    pub fn capture(ctl: &Controller) -> InventorySnapshot {
        let mut ot_pools: BTreeMap<String, OtPool> = BTreeMap::new();
        for id in ctl.net.transponder_ids() {
            let t = ctl.net.transponder(id);
            let pool = ot_pools
                .entry(ctl.net.name(t.location).to_string())
                .or_default();
            pool.total += 1;
            match t.state {
                TransponderState::Idle => pool.idle += 1,
                TransponderState::Tuning { .. } | TransponderState::Active { .. } => {
                    pool.in_use += 1
                }
                TransponderState::Failed => pool.failed += 1,
            }
        }
        let mut fibers = BTreeMap::new();
        for f in ctl.net.fiber_ids() {
            let link = ctl.net.fiber(f);
            fibers.insert(
                f.to_string(),
                FiberUsage {
                    between: (
                        ctl.net.name(link.a).to_string(),
                        ctl.net.name(link.b).to_string(),
                    ),
                    km: link.length_km(),
                    lit: ctl.net.lit_lambdas_on_fiber(f),
                    capacity: ctl.net.grid.channels as usize,
                    up: link.is_up(),
                },
            );
        }
        let (rt, ru) = ctl.regen_stats();
        let mut connections: BTreeMap<String, usize> = BTreeMap::new();
        for c in ctl.connections() {
            *connections.entry(format!("{:?}", c.state)).or_insert(0) += 1;
        }
        let trunks_ready = ctl.trunks().iter().filter(|t| t.ready).count();
        InventorySnapshot {
            ot_pools,
            fibers,
            regens: (rt, ru),
            connections,
            trunks: (ctl.trunks().len(), trunks_ready),
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<InventorySnapshot, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Total idle OTs across the network (planning input).
    pub fn idle_ots(&self) -> usize {
        self.ot_pools.values().map(|p| p.idle).sum()
    }

    /// Count of connections in a given state (by `Debug` name).
    pub fn connections_in(&self, state: ConnState) -> usize {
        self.connections
            .get(&format!("{state:?}"))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Controller, ControllerConfig};
    use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};
    use simcore::DataRate;

    fn ctl_with_conn() -> Controller {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                ems: EmsProfile::calibrated_deterministic(),
                equalization: EqualizationModel::calibrated_deterministic(),
                ..ControllerConfig::default()
            },
        );
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl
    }

    #[test]
    fn snapshot_counts_pools_and_occupancy() {
        let ctl = ctl_with_conn();
        let snap = InventorySnapshot::capture(&ctl);
        assert_eq!(snap.ot_pools.len(), 4);
        let pool_i = &snap.ot_pools["I"];
        assert_eq!(pool_i.total, 4);
        assert_eq!(pool_i.in_use, 1);
        assert_eq!(pool_i.idle, 3);
        assert_eq!(snap.idle_ots(), 14);
        assert_eq!(snap.connections_in(ConnState::Active), 1);
        // The direct fiber has one lit wavelength.
        let lit: usize = snap.fibers.values().map(|f| f.lit).sum();
        assert_eq!(lit, 1);
        assert!(snap.fibers.values().all(|f| f.up));
        assert_eq!(snap.fibers.values().next().unwrap().capacity, 80);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let ctl = ctl_with_conn();
        let snap = InventorySnapshot::capture(&ctl);
        let json = snap.to_json();
        let back = InventorySnapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
        assert!(json.contains("\"I\""));
    }

    #[test]
    fn snapshot_reflects_failures() {
        let mut ctl = ctl_with_conn();
        let ids: Vec<_> = ctl.net.transponder_ids().collect();
        ctl.net.transponder_mut(ids[1]).fail();
        let snap = InventorySnapshot::capture(&ctl);
        let failed: usize = snap.ot_pools.values().map(|p| p.failed).sum();
        assert_eq!(failed, 1);
    }
}
