//! Bridge-and-roll, planned maintenance, and re-grooming.
//!
//! §2.2: *"the GRIPhoN controller executes a bridge-and-roll operation
//! that first creates a full new wavelength path (the 'bridge') while the
//! original connection is still in use and then quickly 'rolls' the
//! traffic on to the new path when ready. The bridge-and-roll results in
//! an almost hitless movement of traffic … One constraint … is that the
//! new wavelength path has to be resource disjoint to the old path."*
//!
//! Three entry points:
//!
//! - [`Controller::bridge_and_roll`] — move one connection to a new
//!   disjoint path. Traffic keeps flowing while the bridge is built
//!   (60–70 s); the roll itself is one FXC switch (~50 ms) — that is the
//!   entire service hit, recorded in the `maintenance.hit_ms` histogram.
//! - [`Controller::start_fiber_maintenance`] — drain a fiber: every
//!   active connection crossing it is bridge-and-rolled away; the fiber
//!   enters maintenance once the last one has rolled.
//! - [`Controller::cold_reroute`] — the baseline GRIPhoN is compared
//!   against in experiment E3: tear down, then re-provision, taking the
//!   full teardown + setup outage.
//! - [`Controller::regroom`] — §4's re-grooming application: migrate a
//!   connection onto a shorter path that appeared after network
//!   augmentation, using bridge-and-roll so the move is hitless.

use photonic::{EmsCommand, FiberId};
use simcore::SimDuration;

use crate::connection::{ConnState, ConnectionId, ConnectionKind, Resources};
use crate::controller::{Controller, RequestError, WorkflowKind};

impl Controller {
    /// Stage a bridge for `id` on a path avoiding `excluded` fibers (the
    /// old path's fibers are always avoided — resource disjointness), then
    /// roll traffic onto it. Returns the planned bridge hop count.
    pub fn bridge_and_roll(
        &mut self,
        id: ConnectionId,
        excluded: &[FiberId],
    ) -> Result<usize, RequestError> {
        self.journal_record(|| crate::durability::Intent::BridgeRoll {
            conn: id.raw(),
            excluded: excluded.iter().map(|f| f.raw()).collect(),
        });
        let conn = self
            .conns
            .get(&id)
            .ok_or(RequestError::UnknownConnection(id))?;
        if conn.state != ConnState::Active {
            return Err(RequestError::BadState(id, conn.state));
        }
        let (rate, from, to) = match (conn.kind, &conn.resources) {
            (ConnectionKind::Wavelength { rate }, Some(Resources::Wavelength(_))) => {
                (rate, conn.from, conn.to)
            }
            _ => return Err(RequestError::BadState(id, conn.state)),
        };
        if conn.bridge.is_some() {
            return Err(RequestError::BadState(id, conn.state));
        }
        // Disjointness: exclude the old path plus caller exclusions.
        let old_path = conn.wavelength_plan().expect("checked above").path.clone();
        let mut avoid: Vec<FiberId> = old_path;
        avoid.extend_from_slice(excluded);
        let plan = self.plan_wavelength(from, to, rate, &avoid)?;
        self.claim_plan(&plan);
        let hops = plan.hops();
        self.conns.get_mut(&id).expect("conn exists").bridge = Some(plan);
        let sample = self.wavelength_setup_sample(hops);
        let dur = sample.total();
        self.trace.emit(
            self.now(),
            "maint",
            format!("{id} bridge building ({hops} hops) eta={dur}"),
        );
        let t0 = self.now();
        let root = self.open_workflow_span(id, WorkflowKind::Bridge, t0, "conn.bridge");
        if root.is_valid() {
            self.spans.attr_u64(root, "hops", hops as u64);
            self.emit_setup_spans(root, t0, &sample);
        }
        self.schedule_workflow(dur, id, WorkflowKind::Bridge);
        Ok(hops)
    }

    pub(crate) fn on_bridge_done(&mut self, id: ConnectionId) {
        let now = self.now();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let Some(bridge) = conn.bridge.as_ref() else {
            return; // bridge was abandoned (e.g. teardown raced it)
        };
        let (s, d) = (bridge.ot_src, bridge.ot_dst);
        self.net.transponder_mut(s).tuning_complete();
        self.net.transponder_mut(d).tuning_complete();
        // Roll: one FXC reconfiguration at each end, in parallel.
        let roll = self
            .ems
            .latency(EmsCommand::FxcSwitch, &mut self.rng)
            .max(self.ems.latency(EmsCommand::FxcSwitch, &mut self.rng));
        let root = self.open_workflow_span(id, WorkflowKind::Roll, now, "conn.roll");
        if root.is_valid() {
            let ph = self
                .spans
                .record(now, now + roll, "phase", "phase.fxc", Some(root));
            self.spans.attr_u64(ph, "queue_wait_ns", 0);
            self.spans.record(
                now,
                now + roll,
                "device",
                EmsCommand::FxcSwitch.span_name(),
                Some(ph),
            );
        }
        self.trace
            .emit(now, "maint", format!("{id} bridge ready, rolling ({roll})"));
        self.schedule_workflow(roll, id, WorkflowKind::Roll);
        // The roll is the hit.
        self.metrics
            .histogram("maintenance.hit_ms")
            .record(roll.as_secs_f64() * 1e3);
    }

    pub(crate) fn on_roll_done(&mut self, id: ConnectionId) {
        let now = self.now();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let Some(new_plan) = conn.bridge.take() else {
            return;
        };
        let old = conn.resources.replace(Resources::Wavelength(new_plan));
        self.trace
            .emit(now, "maint", format!("{id} rolled to bridge path"));
        self.metrics.counter("maintenance.rolls").incr();
        if let Some(Resources::Wavelength(old_plan)) = old {
            // Old path released through a normal (cheap) teardown delay;
            // resources free at completion. Model it synchronously here —
            // the path carries no traffic, so only inventory timing
            // matters, and tests care that it is eventually free.
            self.release_plan(&old_plan);
            let old_fibers = old_plan.path;
            // Maintenance bookkeeping: the drain may now be complete.
            self.check_maintenance_progress(id, &old_fibers);
        }
    }

    fn check_maintenance_progress(&mut self, rolled: ConnectionId, old_fibers: &[FiberId]) {
        let now = self.now();
        let mut ready = Vec::new();
        for (fiber, waiting) in self.pending_maintenance.iter_mut() {
            if old_fibers.contains(fiber) {
                waiting.remove(&rolled);
                if waiting.is_empty() {
                    ready.push(*fiber);
                }
            }
        }
        for fiber in ready {
            self.pending_maintenance.remove(&fiber);
            self.net.fiber_mut(fiber).enter_maintenance();
            self.trace
                .emit(now, "maint", format!("{fiber} drained, in maintenance"));
        }
    }

    /// Drain `fiber` for planned maintenance: bridge-and-roll every
    /// active connection using it. The fiber enters maintenance when the
    /// last one rolls (immediately, if none use it). Returns the ids of
    /// the connections being moved.
    pub fn start_fiber_maintenance(
        &mut self,
        fiber: FiberId,
    ) -> Result<Vec<ConnectionId>, RequestError> {
        self.journal_record(|| crate::durability::Intent::StartFiberMaintenance {
            fiber: fiber.raw(),
        });
        let using: Vec<ConnectionId> = self
            .conns
            .values()
            .filter(|c| c.state == ConnState::Active && c.path_uses_fiber(fiber))
            .map(|c| c.id)
            .collect();
        if using.is_empty() {
            self.net.fiber_mut(fiber).enter_maintenance();
            self.trace.emit(
                self.now(),
                "maint",
                format!("{fiber} idle, straight to maintenance"),
            );
            return Ok(Vec::new());
        }
        let mut moved = Vec::new();
        let rolled: Result<(), RequestError> = self.journaled(|c| {
            for id in using {
                c.bridge_and_roll(id, &[fiber])?;
                moved.push(id);
            }
            Ok(())
        });
        rolled?;
        self.pending_maintenance
            .insert(fiber, moved.iter().copied().collect());
        Ok(moved)
    }

    /// Return a fiber from maintenance to service.
    pub fn end_fiber_maintenance(&mut self, fiber: FiberId) {
        self.journal_record(|| crate::durability::Intent::EndFiberMaintenance {
            fiber: fiber.raw(),
        });
        self.net.fiber_mut(fiber).restore();
        self.trace
            .emit(self.now(), "maint", format!("{fiber} back in service"));
    }

    /// The baseline alternative to bridge-and-roll: take the connection
    /// down, re-provision it on a path avoiding `excluded`. The customer
    /// eats the full teardown + setup outage; returns nothing until the
    /// event loop finishes the work.
    pub fn cold_reroute(
        &mut self,
        id: ConnectionId,
        excluded: &[FiberId],
    ) -> Result<(), RequestError> {
        self.journal_record(|| crate::durability::Intent::ColdReroute {
            conn: id.raw(),
            excluded: excluded.iter().map(|f| f.raw()).collect(),
        });
        let conn = self
            .conns
            .get(&id)
            .ok_or(RequestError::UnknownConnection(id))?;
        if conn.state != ConnState::Active {
            return Err(RequestError::BadState(id, conn.state));
        }
        let (rate, from, to) = match conn.kind {
            ConnectionKind::Wavelength { rate } => (rate, conn.from, conn.to),
            _ => return Err(RequestError::BadState(id, conn.state)),
        };
        let mut avoid: Vec<FiberId> = conn.wavelength_plan().expect("active λ conn").path.clone();
        avoid.extend_from_slice(excluded);
        let plan = self.plan_wavelength(from, to, rate, &avoid)?;
        // Outage starts now: traffic stops the moment teardown begins.
        let now = self.now();
        let teardown_sample = self.wavelength_teardown_sample();
        let setup_sample = self.wavelength_setup_sample(plan.hops());
        let teardown = teardown_sample.total();
        let setup = setup_sample.total();
        let old = {
            let c = self.conns.get_mut(&id).expect("conn exists");
            c.transition(ConnState::Failed);
            c.outage_start(now);
            c.resources.take()
        };
        if let Some(Resources::Wavelength(old_plan)) = old {
            self.release_plan(&old_plan);
        }
        self.claim_plan(&plan);
        {
            let c = self.conns.get_mut(&id).expect("conn exists");
            c.resources = Some(Resources::Wavelength(plan));
            c.transition(ConnState::Restoring);
        }
        let hit = teardown + setup;
        let root = self.open_workflow_span(id, WorkflowKind::Restore, now, "conn.cold_reroute");
        if root.is_valid() {
            self.emit_teardown_spans(root, now, &teardown_sample);
            self.emit_setup_spans(root, now + teardown, &setup_sample);
        }
        self.metrics
            .histogram("maintenance.cold_hit_ms")
            .record(hit.as_secs_f64() * 1e3);
        self.trace.emit(
            now,
            "maint",
            format!("{id} cold reroute, outage will be {hit}"),
        );
        self.schedule_workflow(hit, id, WorkflowKind::Restore);
        Ok(())
    }

    /// §4 re-grooming: if a strictly shorter (by km) disjoint path exists
    /// for `id`, migrate onto it via bridge-and-roll. Returns `Some(km
    /// saved)` when a migration was started.
    pub fn regroom(&mut self, id: ConnectionId) -> Result<Option<f64>, RequestError> {
        self.journal_record(|| crate::durability::Intent::Regroom { conn: id.raw() });
        let conn = self
            .conns
            .get(&id)
            .ok_or(RequestError::UnknownConnection(id))?;
        if conn.state != ConnState::Active || conn.bridge.is_some() {
            return Err(RequestError::BadState(id, conn.state));
        }
        let (rate, from, to) = match conn.kind {
            ConnectionKind::Wavelength { rate } => (rate, conn.from, conn.to),
            _ => return Err(RequestError::BadState(id, conn.state)),
        };
        let old_path = conn.wavelength_plan().expect("active λ conn").path.clone();
        let old_km = self.net.path_km(&old_path);
        match self.plan_wavelength(from, to, rate, &old_path) {
            Ok(plan) => {
                let new_km = self.net.path_km(&plan.path);
                if new_km + 1e-9 < old_km {
                    // Worth migrating; reuse the bridge machinery.
                    self.claim_plan(&plan);
                    let hops = plan.hops();
                    self.conns.get_mut(&id).expect("conn exists").bridge = Some(plan);
                    let sample = self.wavelength_setup_sample(hops);
                    let dur = sample.total();
                    self.trace.emit(
                        self.now(),
                        "maint",
                        format!("{id} re-grooming {old_km:.0}km → {new_km:.0}km"),
                    );
                    let t0 = self.now();
                    let root = self.open_workflow_span(id, WorkflowKind::Bridge, t0, "conn.bridge");
                    if root.is_valid() {
                        self.spans.attr_u64(root, "hops", hops as u64);
                        self.emit_setup_spans(root, t0, &sample);
                    }
                    self.schedule_workflow(dur, id, WorkflowKind::Bridge);
                    Ok(Some(old_km - new_km))
                } else {
                    Ok(None)
                }
            }
            Err(_) => Ok(None),
        }
    }

    /// Drain an entire ROADM node for maintenance: every active
    /// unprotected wavelength connection *through* it (not terminating
    /// at it) is bridge-and-rolled onto a path avoiding all the node's
    /// fibers. Returns the moved connections; terminating connections
    /// cannot be moved off their own endpoint and are returned in the
    /// second list for the operator to handle (customer notification).
    pub fn start_node_maintenance(
        &mut self,
        node: photonic::RoadmId,
    ) -> Result<(Vec<ConnectionId>, Vec<ConnectionId>), RequestError> {
        self.journal_record(|| crate::durability::Intent::StartNodeMaintenance {
            node: node.raw(),
        });
        let node_fibers: Vec<FiberId> = self.net.neighbors(node).iter().map(|&(f, _)| f).collect();
        let mut through = Vec::new();
        let mut terminating = Vec::new();
        let candidates: Vec<ConnectionId> = self
            .conns
            .values()
            .filter(|c| {
                c.state == ConnState::Active && node_fibers.iter().any(|f| c.path_uses_fiber(*f))
            })
            .map(|c| c.id)
            .collect();
        for id in candidates {
            let c = self.conns.get(&id).expect("conn exists");
            if c.from == node || c.to == node {
                terminating.push(id);
            } else {
                through.push(id);
            }
        }
        let rolled: Result<(), RequestError> = self.journaled(|c| {
            for id in &through {
                c.bridge_and_roll(*id, &node_fibers)?;
            }
            Ok(())
        });
        rolled?;
        self.trace.emit(
            self.now(),
            "maint",
            format!(
                "node {} drain: {} moving, {} terminate here",
                self.net.name(node),
                through.len(),
                terminating.len()
            ),
        );
        Ok((through, terminating))
    }

    /// §4 re-grooming sweep: try to migrate every active unprotected
    /// wavelength connection onto a shorter path. Returns
    /// `(migrations started, total km saved)`. Run after network
    /// augmentation ("additional routes between nodes will be added").
    pub fn regroom_all(&mut self) -> (usize, f64) {
        self.journal_record(|| crate::durability::Intent::RegroomAll);
        let candidates: Vec<ConnectionId> = self
            .conns
            .values()
            .filter(|c| {
                c.state == ConnState::Active
                    && c.bridge.is_none()
                    && matches!(c.kind, ConnectionKind::Wavelength { .. })
            })
            .map(|c| c.id)
            .collect();
        let mut started = 0;
        let mut km = 0.0;
        self.journal_depth += 1;
        for id in candidates {
            if let Ok(Some(saved)) = self.regroom(id) {
                started += 1;
                km += saved;
            }
        }
        self.journal_depth -= 1;
        (started, km)
    }

    /// Total service hit recorded for a connection's moves so far —
    /// convenience for experiments.
    pub fn recorded_hit(&self) -> Option<SimDuration> {
        self.metrics
            .get_histogram("maintenance.hit_ms")
            .map(|h| SimDuration::from_secs_f64(h.sum() / 1e3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork, Wavelength};
    use simcore::DataRate;

    fn quiet() -> ControllerConfig {
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        }
    }

    fn active_conn(
        ctl: &mut Controller,
        ids: &photonic::TestbedIds,
    ) -> crate::connection::ConnectionId {
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        id
    }

    #[test]
    fn bridge_and_roll_is_nearly_hitless() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let id = active_conn(&mut ctl, &ids);
        ctl.bridge_and_roll(id, &[]).unwrap();
        // Traffic still flowing while the bridge is built.
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Active);
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Active);
        assert!(conn.bridge.is_none());
        // Moved off the direct fiber (disjointness).
        let plan = conn.wavelength_plan().unwrap();
        assert!(!plan.path.contains(&ids.f_i_iv));
        // The hit is the FXC roll: ~50 ms, four orders of magnitude less
        // than a cold reroute.
        let hit = ctl.metrics.get_histogram("maintenance.hit_ms").unwrap();
        assert_eq!(hit.count(), 1);
        assert!(hit.mean() < 100.0, "hit={}ms", hit.mean());
        // Old resources freed.
        assert!(ctl.net.lambda_free_on_fiber(ids.f_i_iv, Wavelength(0)));
    }

    #[test]
    fn cold_reroute_outage_is_seconds() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let id = active_conn(&mut ctl, &ids);
        ctl.cold_reroute(id, &[]).unwrap();
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Active);
        let outage = conn.outage_total.as_secs_f64();
        // teardown (9.05) + 2-hop setup (65.67) ≈ 74.7 s.
        assert!((70.0..80.0).contains(&outage), "outage={outage}");
    }

    #[test]
    fn fiber_maintenance_drains_then_flags() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let id = active_conn(&mut ctl, &ids);
        let moved = ctl.start_fiber_maintenance(ids.f_i_iv).unwrap();
        assert_eq!(moved, vec![id]);
        assert!(ctl.net.fiber(ids.f_i_iv).is_up(), "not drained yet");
        ctl.run_until_idle();
        assert!(matches!(
            ctl.net.fiber(ids.f_i_iv).state,
            photonic::FiberState::Maintenance
        ));
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Active);
        ctl.end_fiber_maintenance(ids.f_i_iv);
        assert!(ctl.net.fiber(ids.f_i_iv).is_up());
    }

    #[test]
    fn idle_fiber_maintenance_is_immediate() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let moved = ctl.start_fiber_maintenance(ids.f_ii_iii).unwrap();
        assert!(moved.is_empty());
        assert!(matches!(
            ctl.net.fiber(ids.f_ii_iii).state,
            photonic::FiberState::Maintenance
        ));
    }

    #[test]
    fn regroom_migrates_to_shorter_path() {
        // Build a network where the initial route is forced long, then a
        // short link appears (network augmentation).
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        let c = net.add_roadm("c");
        net.link(a, c, 500.0).unwrap();
        net.link(c, b, 500.0).unwrap();
        net.add_transponders(a, LineRate::Gbps10, 4).unwrap();
        net.add_transponders(b, LineRate::Gbps10, 4).unwrap();
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let id = ctl.request_wavelength(csp, a, b, LineRate::Gbps10).unwrap();
        ctl.run_until_idle();
        assert_eq!(
            ctl.connection(id)
                .unwrap()
                .wavelength_plan()
                .unwrap()
                .hops(),
            2
        );
        // Augment: direct 300 km link appears.
        ctl.net.link(a, b, 300.0).unwrap();
        let saved = ctl.regroom(id).unwrap().expect("shorter path exists");
        assert!((saved - 700.0).abs() < 1e-6, "saved={saved}");
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.wavelength_plan().unwrap().hops(), 1);
        assert_eq!(conn.outage_total, simcore::SimDuration::ZERO);
        // Hitless: only the roll hit is recorded.
        assert!(
            ctl.metrics
                .get_histogram("maintenance.hit_ms")
                .unwrap()
                .mean()
                < 100.0
        );
    }

    #[test]
    fn regroom_noop_when_already_best() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let id = active_conn(&mut ctl, &ids);
        // Direct 1-hop path is already optimal; the only disjoint
        // alternative is longer.
        assert_eq!(ctl.regroom(id).unwrap(), None);
        assert!(ctl.connection(id).unwrap().bridge.is_none());
    }

    #[test]
    fn node_maintenance_moves_transit_keeps_terminating() {
        let (net, ids) = PhotonicNetwork::testbed(8);
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        // A transit connection through III (forced via exclusions) and a
        // connection terminating at III.
        let transit = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        // Move it onto the I–III–IV detour so it transits III.
        ctl.bridge_and_roll(transit, &[]).unwrap();
        ctl.run_until_idle();
        assert!(ctl
            .connection(transit)
            .unwrap()
            .path_uses_fiber(ids.f_i_iii));
        let terminating = ctl
            .request_wavelength(csp, ids.ii, ids.iii, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let (through, term) = ctl.start_node_maintenance(ids.iii).unwrap();
        assert_eq!(through, vec![transit]);
        assert_eq!(term, vec![terminating]);
        ctl.run_until_idle();
        // The transit circuit now avoids every fiber touching III.
        let plan = ctl.connection(transit).unwrap().wavelength_plan().unwrap();
        for f in &plan.path {
            let link = ctl.net.fiber(*f);
            assert!(link.a != ids.iii && link.b != ids.iii);
        }
        assert_eq!(
            ctl.connection(transit).unwrap().outage_total,
            simcore::SimDuration::ZERO
        );
    }

    #[test]
    fn reversion_after_repair_returns_to_short_path() {
        let (net, ids) = PhotonicNetwork::testbed(8);
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.schedule_repair(ids.f_i_iv, simcore::SimDuration::from_hours(6));
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Active);
        // Auto-reversion put it back on the repaired 1-hop primary,
        // hitlessly (outage is only the original restoration).
        assert_eq!(conn.wavelength_plan().unwrap().hops(), 1);
        assert!(conn.wavelength_plan().unwrap().path.contains(&ids.f_i_iv));
        let outage = conn.outage_total.as_secs_f64();
        assert!(outage < 120.0, "reversion added no outage: {outage}");
        assert!(ctl.metrics.counter("maintenance.reversions").get() >= 1);
    }

    #[test]
    fn regroom_all_sweeps_after_augmentation() {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        let c = net.add_roadm("c");
        net.link(a, c, 400.0).unwrap();
        net.link(c, b, 400.0).unwrap();
        net.add_transponders(a, LineRate::Gbps10, 6).unwrap();
        net.add_transponders(b, LineRate::Gbps10, 6).unwrap();
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let c1 = ctl.request_wavelength(csp, a, b, LineRate::Gbps10).unwrap();
        let c2 = ctl.request_wavelength(csp, a, b, LineRate::Gbps10).unwrap();
        ctl.run_until_idle();
        // Augment with a short direct link.
        ctl.net.link(a, b, 300.0).unwrap();
        let (started, km) = ctl.regroom_all();
        assert_eq!(started, 2);
        assert!((km - 2.0 * 500.0).abs() < 1e-6);
        ctl.run_until_idle();
        for id in [c1, c2] {
            assert_eq!(
                ctl.connection(id)
                    .unwrap()
                    .wavelength_plan()
                    .unwrap()
                    .hops(),
                1
            );
        }
        // A second sweep finds nothing.
        assert_eq!(ctl.regroom_all(), (0, 0.0));
    }

    #[test]
    fn double_bridge_rejected() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let id = active_conn(&mut ctl, &ids);
        ctl.bridge_and_roll(id, &[]).unwrap();
        assert!(matches!(
            ctl.bridge_and_roll(id, &[]),
            Err(RequestError::BadState(..))
        ));
    }
}
