//! Vendored offline stand-in for `criterion`.
//!
//! Implements the benchmark-facing API surface this workspace uses
//! (`benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `criterion_group!`/`criterion_main!`) with a simple wall-clock harness:
//! calibrate an iteration count per sample, take `sample_size` samples,
//! report the median time per iteration. No plots, no statistics beyond
//! median/min/max, no baseline persistence — callers that need machine
//! readable output should use [`Sample::median_ns`] via
//! [`Criterion::take_results`].

#![deny(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The vendored harness treats
/// all sizes identically (one setup per measured iteration, setup time
/// excluded from the sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// One benchmark's measured result.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Fully qualified benchmark id (`group/name`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Iterations per sample used for measurement.
    pub iters_per_sample: u64,
}

/// Timing loop driver handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Iterations used per sample (set after measurement).
    iters: u64,
}

impl Bencher {
    /// Measure a routine whose cost is the whole closure body.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            black_box(routine());
        });
    }

    /// Measure a routine with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Time setup+routine and setup alone; subtracting would add noise,
        // so instead measure routine directly on pre-built inputs, one
        // setup per iteration outside the timed region.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine(setup()));
        }
        let iters = self.calibrate_batched(&mut setup, &mut routine);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        self.iters = iters as u64;
    }

    fn calibrate_batched<I, S: FnMut() -> I, R: FnMut(I) -> O, O>(
        &self,
        setup: &mut S,
        routine: &mut R,
    ) -> usize {
        let start = Instant::now();
        black_box(routine(setup()));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        ((per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000)) as usize
    }

    fn run<F: FnMut()>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters = 0u64;
        while Instant::now() < warm_deadline {
            routine();
            warm_iters += 1;
        }
        // Calibrate iterations per sample from the warm-up rate.
        let rate = (warm_iters.max(1) as f64) / self.warm_up_time.as_secs_f64().max(1e-9);
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters = ((rate * per_sample) as u64).clamp(1, 100_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                routine();
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        self.iters = iters;
    }
}

/// A named set of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_bench(
            id,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            f,
        );
        self
    }

    /// Finish the group (no-op beyond matching the real API).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Sample>,
}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }

    /// Run one ungrouped benchmark with the default settings.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_bench(
            id.into(),
            10,
            Duration::from_secs(3),
            Duration::from_millis(500),
            f,
        );
        self
    }

    /// Drain the measured results (for machine-readable exporters).
    pub fn take_results(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.results)
    }

    fn run_bench<F>(
        &mut self,
        id: String,
        sample_size: usize,
        measurement_time: Duration,
        warm_up_time: Duration,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
            measurement_time,
            warm_up_time,
            iters: 0,
        };
        f(&mut b);
        let mut sorted = b.samples.clone();
        sorted.sort_by(|a, c| a.partial_cmp(c).unwrap());
        let median = if sorted.is_empty() {
            0.0
        } else {
            sorted[sorted.len() / 2]
        };
        let sample = Sample {
            id: id.clone(),
            median_ns: median,
            min_ns: sorted.first().copied().unwrap_or(0.0),
            max_ns: sorted.last().copied().unwrap_or(0.0),
            iters_per_sample: b.iters,
        };
        println!(
            "{id:<50} median {:>12} /iter  (min {}, max {}, {} iters/sample)",
            fmt_ns(sample.median_ns),
            fmt_ns(sample.min_ns),
            fmt_ns(sample.max_ns),
            sample.iters_per_sample
        );
        self.results.push(sample);
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
