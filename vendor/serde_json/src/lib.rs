//! Vendored offline stand-in for `serde_json`.
//!
//! Renders the vendored serde [`Content`] value tree to JSON text and
//! parses JSON text back into it. Covers the API surface this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].
//!
//! Encoding notes (internally consistent; both directions are implemented
//! here):
//! - Maps whose keys are all strings render as JSON objects; maps with
//!   structured keys render as arrays of `[key, value]` pairs.
//! - `u128` values wider than `u64` render as decimal strings.
//! - Non-finite floats are a serialization error (JSON has no NaN/Inf).

#![deny(missing_docs)]

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// JSON serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Writer {
    out: String,
    /// `None` = compact, `Some(n)` = pretty with current indent depth `n`.
    indent: Option<usize>,
}

impl Writer {
    fn newline(&mut self) {
        if let Some(depth) = self.indent {
            self.out.push('\n');
            for _ in 0..depth {
                self.out.push_str("  ");
            }
        }
    }

    fn open(&mut self, c: char) {
        self.out.push(c);
        if let Some(d) = self.indent.as_mut() {
            *d += 1;
        }
    }

    fn close(&mut self, c: char, empty: bool) {
        if let Some(d) = self.indent.as_mut() {
            *d -= 1;
        }
        if !empty {
            self.newline();
        }
        self.out.push(c);
    }

    fn sep(&mut self) {
        self.out.push(',');
        if self.indent.is_none() {
            // compact: no space, same as serde_json
        }
        self.newline();
    }

    fn write(&mut self, c: &Content) -> Result<(), Error> {
        match c {
            Content::Null => self.out.push_str("null"),
            Content::Bool(b) => self.out.push_str(if *b { "true" } else { "false" }),
            Content::U64(n) => self.out.push_str(&n.to_string()),
            Content::I64(n) => self.out.push_str(&n.to_string()),
            Content::U128(n) => {
                if let Ok(small) = u64::try_from(*n) {
                    self.out.push_str(&small.to_string());
                } else {
                    write_escaped(&mut self.out, &n.to_string());
                }
            }
            Content::F64(f) => {
                if !f.is_finite() {
                    return Err(Error::new("JSON cannot represent non-finite floats"));
                }
                // Rust's shortest round-trip float formatting; integral
                // values print without a fraction and parse back as
                // integers, which numeric Deserialize impls accept.
                self.out.push_str(&f.to_string());
            }
            Content::Str(s) => write_escaped(&mut self.out, s),
            Content::Seq(items) => {
                self.open('[');
                for (i, item) in items.iter().enumerate() {
                    if i == 0 {
                        self.newline();
                    } else {
                        self.sep();
                    }
                    self.write(item)?;
                }
                self.close(']', items.is_empty());
            }
            Content::Map(entries) => {
                let all_string_keys = entries.iter().all(|(k, _)| matches!(k, Content::Str(_)));
                if all_string_keys {
                    self.open('{');
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i == 0 {
                            self.newline();
                        } else {
                            self.sep();
                        }
                        self.write(k)?;
                        self.out.push_str(": ");
                        self.write(v)?;
                    }
                    self.close('}', entries.is_empty());
                } else {
                    self.open('[');
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i == 0 {
                            self.newline();
                        } else {
                            self.sep();
                        }
                        self.out.push('[');
                        self.write(k)?;
                        self.out.push_str(", ");
                        self.write(v)?;
                        self.out.push(']');
                    }
                    self.close(']', entries.is_empty());
                }
            }
        }
        Ok(())
    }
}

fn render(content: &Content, pretty: bool) -> Result<String, Error> {
    let mut w = Writer {
        out: String::new(),
        indent: if pretty { Some(0) } else { None },
    };
    w.write(content)?;
    Ok(w.out)
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    render(&value.serialize(), false)
}

/// Serialize a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    render(&value.serialize(), true)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Content::U128(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::deserialize(&content)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\tü€".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_collections_roundtrip() {
        let mut m: BTreeMap<String, Vec<(u32, bool)>> = BTreeMap::new();
        m.insert("x".into(), vec![(1, true), (2, false)]);
        m.insert("y z".into(), vec![]);
        let json = to_string_pretty(&m).unwrap();
        assert_eq!(
            from_str::<BTreeMap<String, Vec<(u32, bool)>>>(&json).unwrap(),
            m
        );
        assert!(json.contains("\"x\""));
    }

    #[test]
    fn structured_map_keys_roundtrip_as_pair_arrays() {
        let mut m: BTreeMap<(u8, u8), u32> = BTreeMap::new();
        m.insert((1, 2), 3);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "[[[1,2], 3]]");
        assert_eq!(from_str::<BTreeMap<(u8, u8), u32>>(&json).unwrap(), m);
    }

    #[test]
    fn wide_u128_roundtrips_via_string() {
        let v = u128::MAX - 5;
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<u128>(&json).unwrap(), v);
    }

    #[test]
    fn float_precision_roundtrips() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v);
        }
    }
}
