//! Vendored offline stand-in for `proptest`.
//!
//! A minimal, fully deterministic property-testing engine covering the
//! subset this workspace uses: the `proptest!` macro with `pat in strategy`
//! bindings, range and `any::<T>()` strategies, tuple strategies,
//! `prop::collection::vec`, `prop_assert*` / `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: each test derives its RNG seed from the test name, so runs are
//! reproducible across invocations and machines.

#![deny(missing_docs)]

use std::ops::Range;

/// Outcome carrier for one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not meet a `prop_assume!` precondition; it is skipped
    /// without counting against the case budget.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the RNG from a test's name so every test gets a distinct but
    /// reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread; good enough for property inputs.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of values from `element`, sized within `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy produced by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` values from `inner` three quarters of the time, `None`
    /// otherwise (upstream proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// Module alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::{collection, option};
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)*),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  both: {:?}",
                        format!($($fmt)*),
                        __l
                    )));
                }
            }
        }
    };
}

/// Skip the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs from the strategies and runs the
/// body for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __cfg.cases.saturating_mul(20).max(100);
                while __passed < __cfg.cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest `{}` gave up: {} of {} cases passed after {} attempts \
                             (too many prop_assume! rejects)",
                            stringify!($name), __passed, __cfg.cases, __attempts
                        );
                    }
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => {
                            __passed += 1;
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest `{}` failed on case {}: {}",
                                stringify!($name), __passed + 1, __msg
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn assume_rejects_do_not_count(pair in (0u8..4, 0u8..4)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }
}
