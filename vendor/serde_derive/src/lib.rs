//! Vendored offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-tree `serde` crate, by hand-parsing the item's token
//! stream (the real `syn`/`quote` stack is unavailable offline). Supports
//! the shapes this workspace uses: named/tuple/unit structs and
//! externally-tagged enums, plus the attribute subset
//! `#[serde(rename_all = "snake_case")]`, `#[serde(rename = "...")]`,
//! `#[serde(default)]`, and `#[serde(default = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Per-field parse result.
struct Field {
    /// Rust field identifier.
    name: String,
    /// Serialized key (after `rename` / `rename_all`).
    key: String,
    /// `None` = required; `Some(None)` = `Default::default()`;
    /// `Some(Some(path))` = call `path()`.
    default: Option<Option<String>>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    tag: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Default)]
struct SerdeAttrs {
    rename: Option<String>,
    rename_all: Option<String>,
    default: Option<Option<String>>,
}

fn lit_str(tok: &TokenTree) -> String {
    let s = tok.to_string();
    s.trim_matches('"').to_string()
}

/// Parse the items inside one `#[serde(...)]` group into `attrs`.
fn parse_serde_attr(group: TokenStream, attrs: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let key = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        let has_value = matches!(toks.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
        let value = if has_value { toks.get(i + 2) } else { None };
        match key.as_str() {
            "rename" => attrs.rename = value.map(lit_str),
            "rename_all" => attrs.rename_all = value.map(lit_str),
            "default" => attrs.default = Some(value.map(lit_str)),
            // Anything else (skip, deny_unknown_fields, ...) is not used in
            // this workspace; fail loudly rather than mis-serialize.
            other => panic!("vendored serde_derive: unsupported attribute `{other}`"),
        }
        i += if has_value { 3 } else { 1 };
        // Skip a separating comma if present.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

/// Consume leading `#[...]` attributes at `i`, folding any `#[serde(...)]`
/// contents into the returned attrs.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let TokenTree::Group(g) = &toks[*i + 1] else {
            panic!("vendored serde_derive: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    parse_serde_attr(args.stream(), &mut attrs);
                }
            }
        }
        *i += 2;
    }
    attrs
}

/// Skip an optional `pub` / `pub(...)` visibility.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skip a type at `i`, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn apply_rename(name: &str, rename: &Option<String>, rename_all: &Option<String>) -> String {
    if let Some(r) = rename {
        return r.clone();
    }
    match rename_all.as_deref() {
        Some("snake_case") => snake_case(name),
        Some("lowercase") => name.to_ascii_lowercase(),
        Some(other) => panic!("vendored serde_derive: unsupported rename_all `{other}`"),
        None => name.to_string(),
    }
}

/// Parse named fields from the token stream of a brace group.
fn parse_named_fields(stream: TokenStream, rename_all: &Option<String>) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            panic!("vendored serde_derive: expected field name");
        };
        let name = name.to_string();
        i += 1; // name
        i += 1; // ':'
        skip_type(&toks, &mut i);
        i += 1; // ',' (or past end)
        let key = apply_rename(&name, &attrs.rename, rename_all);
        fields.push(Field {
            name,
            key,
            default: attrs.default,
        });
    }
    fields
}

/// Count the top-level comma-separated entries of a paren group (tuple
/// struct / tuple variant fields).
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < toks.len() {
        let _ = take_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        skip_type(&toks, &mut i);
        i += 1; // ','
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream, rename_all: &Option<String>) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            panic!("vendored serde_derive: expected variant name");
        };
        let name = name.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream(), &None))
            }
            _ => VariantKind::Unit,
        };
        // Skip a discriminant (`= expr`) if ever present, then the comma.
        while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        let tag = apply_rename(&name, &attrs.rename, rename_all);
        variants.push(Variant { name, tag, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container = take_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let Some(TokenTree::Ident(name)) = toks.get(i) else {
        panic!("vendored serde_derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive: generic types are not supported");
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream(), &container.rename_all),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: tuple_arity(g.stream()),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream(), &container.rename_all),
            },
            _ => panic!("vendored serde_derive: malformed enum"),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn str_content(key: &str) -> String {
    format!("::serde::Content::Str(::std::string::String::from({key:?}))")
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({}, ::serde::Serialize::serialize(&self.{}))",
                        str_content(&f.key),
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(::std::vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{\n\
             ::serde::Serialize::serialize(&self.0)\n}}\n}}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Seq(::std::vec![{}])\n}}\n}}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{ ::serde::Content::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = str_content(&v.tag);
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{} => {tag},", v.name)
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{}(__f0) => ::serde::Content::Map(::std::vec![({tag}, \
                             ::serde::Serialize::serialize(__f0))]),",
                            v.name
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{}({}) => ::serde::Content::Map(::std::vec![({tag}, \
                                 ::serde::Content::Seq(::std::vec![{}]))]),",
                                v.name,
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({}, ::serde::Serialize::serialize({}))",
                                        str_content(&f.key),
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{} {{ {} }} => ::serde::Content::Map(::std::vec![({tag}, \
                                 ::serde::Content::Map(::std::vec![{}]))]),",
                                v.name,
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Content {{\n\
                 match self {{\n{}\n}}\n}}\n}}",
                arms.join("\n")
            )
        }
    }
}

/// The expression filling one named field during deserialization.
fn field_expr(f: &Field, entries_var: &str) -> String {
    let missing = match &f.default {
        None => format!("::serde::Deserialize::deserialize_missing({:?})?", f.key),
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{}: match ::serde::content_get({entries_var}, {:?}) {{\n\
         ::std::option::Option::Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n\
         ::std::option::Option::None => {missing},\n}}",
        f.name, f.key
    )
}

fn gen_deserialize(item: &Item) -> String {
    let header = |name: &str, body: &str| {
        format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__content: &::serde::Content) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
        )
    };
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields.iter().map(|f| field_expr(f, "__entries")).collect();
            header(
                name,
                &format!(
                    "let __entries = __content.as_entries({name:?})?;\n\
                     ::std::result::Result::Ok({name} {{\n{}\n}})",
                    inits.join(",\n")
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => header(
            name,
            &format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__content)?))"
            ),
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            header(
                name,
                &format!(
                    "let __items = __content.as_seq({name:?})?;\n\
                     if __items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"expected {arity} elements for {name}, found {{}}\", \
                     __items.len())));\n}}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => header(
            name,
            &format!("let _ = __content; ::std::result::Result::Ok({name})"),
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.tag, v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.tag, v.name
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}(\
                         ::serde::Deserialize::deserialize(__v)?)),",
                        v.tag, v.name
                    ),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                            .collect();
                        format!(
                            "{:?} => {{\n\
                             let __items = __v.as_seq(\"{name}::{}\")?;\n\
                             if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"wrong tuple variant arity\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{}({}))\n}}",
                            v.tag,
                            v.name,
                            v.name,
                            items.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> =
                            fields.iter().map(|f| field_expr(f, "__ventries")).collect();
                        format!(
                            "{:?} => {{\n\
                             let __ventries = __v.as_entries(\"{name}::{}\")?;\n\
                             ::std::result::Result::Ok({name}::{} {{\n{}\n}})\n}}",
                            v.tag,
                            v.name,
                            v.name,
                            inits.join(",\n")
                        )
                    }
                })
                .collect();
            header(
                name,
                &format!(
                    "match __content {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(__other, {name:?})),\n}},\n\
                     ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                     let (__k, __v) = &__m[0];\n\
                     match __k.as_str(\"enum tag\")? {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(__other, {name:?})),\n}}\n}}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"expected externally tagged {name}, found {{}}\", \
                     __other.kind()))),\n}}",
                    unit_arms.join("\n"),
                    tagged_arms.join("\n")
                ),
            )
        }
    }
}

/// Derive `serde::Serialize` (vendored value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("vendored serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (vendored value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("vendored serde_derive: generated Deserialize impl must parse")
}
