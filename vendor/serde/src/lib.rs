//! Vendored offline stand-in for `serde`.
//!
//! The build environment for this repository is air-gapped, so the real
//! crates.io `serde` cannot be fetched. This crate provides the subset the
//! workspace actually uses — `Serialize`/`Deserialize` derives and the
//! trait machinery behind them — built on a simple *value tree* model
//! (`Content`) instead of serde's visitor architecture. `serde_json` (also
//! vendored) converts `Content` to and from JSON text.
//!
//! The API is intentionally source-compatible with the call sites in this
//! workspace (`#[derive(Serialize, Deserialize)]`, `#[serde(...)]`
//! attributes, `serde_json::to_string_pretty`/`from_str`), not with the
//! full serde ecosystem.

#![deny(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value tree.
///
/// This plays the role of serde's data model: `Serialize` produces a
/// `Content`, `Deserialize` consumes one, and format crates (the vendored
/// `serde_json`) render it to and from text.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (anything that fits in `u64`).
    U64(u64),
    /// Signed negative integer.
    I64(i64),
    /// 128-bit unsigned integer (wavelength occupancy masks).
    U128(u128),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, tuple structs).
    Seq(Vec<Content>),
    /// Key/value map (structs and maps). Keys need not be strings; format
    /// crates decide how to render non-string keys.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// View this content as a struct/map entry list.
    pub fn as_entries(&self, what: &str) -> Result<&[(Content, Content)], DeError> {
        match self {
            Content::Map(entries) => Ok(entries),
            other => Err(DeError::custom(format!(
                "expected map for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// View this content as a sequence.
    pub fn as_seq(&self, what: &str) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(items) => Ok(items),
            other => Err(DeError::custom(format!(
                "expected sequence for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// View this content as a string slice.
    pub fn as_str(&self, what: &str) -> Result<&str, DeError> {
        match self {
            Content::Str(s) => Ok(s),
            other => Err(DeError::custom(format!(
                "expected string for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// Short human-readable tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::U128(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Look up a field by name in a struct's entry list.
pub fn content_get<'a>(entries: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find_map(|(k, v)| match k {
        Content::Str(s) if s == key => Some(v),
        _ => None,
    })
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str) -> DeError {
        DeError::custom(format!("missing field `{field}`"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> DeError {
        DeError::custom(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into the [`Content`] data model.
pub trait Serialize {
    /// Produce the value tree for `self`.
    fn serialize(&self) -> Content;
}

/// A type that can be rebuilt from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuild a value from a content tree.
    fn deserialize(content: &Content) -> Result<Self, DeError>;

    /// Called by derived impls when a struct field is absent and has no
    /// `#[serde(default)]`. `Option<T>` overrides this to yield `None`,
    /// matching serde's behavior for missing optional fields.
    fn deserialize_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let n: u64 = match content {
                    Content::U64(n) => *n,
                    Content::I64(n) if *n >= 0 => *n as u64,
                    Content::U128(n) => u64::try_from(*n)
                        .map_err(|_| DeError::custom("integer overflow"))?,
                    Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let n: i64 = match content {
                    Content::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom("integer overflow"))?,
                    Content::I64(n) => *n,
                    Content::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize(&self) -> Content {
        if let Ok(small) = u64::try_from(*self) {
            Content::U64(small)
        } else {
            Content::U128(*self)
        }
    }
}

impl Deserialize for u128 {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::U64(n) => Ok(*n as u128),
            Content::I64(n) if *n >= 0 => Ok(*n as u128),
            Content::U128(n) => Ok(*n),
            // Large masks round-trip through JSON as decimal strings.
            Content::Str(s) => s
                .parse::<u128>()
                .map_err(|_| DeError::custom("invalid u128 string")),
            other => Err(DeError::custom(format!(
                "expected u128, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(f) => Ok(*f as $t),
                    Content::U64(n) => Ok(*n as $t),
                    Content::I64(n) => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        "expected float, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        let s = content.as_str("char")?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        Ok(content.as_str("String")?.to_string())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        // Owned input cannot be borrowed; leak the (tiny, rare) string so
        // `&'static str` fields keep compiling like they do on real serde.
        Ok(Box::leak(
            content.as_str("&str")?.to_string().into_boxed_str(),
        ))
    }
}

impl Serialize for () {
    fn serialize(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Compound impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        T::deserialize(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn deserialize_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content.as_seq("Vec")?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::deserialize(content)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let items = content.as_seq("tuple")?;
                let expect = [$(stringify!($idx)),+].len();
                if items.len() != expect {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expect}, found sequence of {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

fn serialize_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    iter: impl Iterator<Item = (&'a K, &'a V)>,
) -> Content {
    Content::Map(iter.map(|(k, v)| (k.serialize(), v.serialize())).collect())
}

fn deserialize_entries<K: Deserialize, V: Deserialize>(
    content: &Content,
) -> Result<Vec<(K, V)>, DeError> {
    match content {
        Content::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
            .collect(),
        // Maps with non-string keys render as sequences of [key, value]
        // pairs in JSON; accept that shape on the way back in.
        Content::Seq(items) => items
            .iter()
            .map(|pair| {
                let kv = pair.as_seq("map entry")?;
                if kv.len() != 2 {
                    return Err(DeError::custom("map entry must be a [key, value] pair"));
                }
                Ok((K::deserialize(&kv[0])?, V::deserialize(&kv[1])?))
            })
            .collect(),
        other => Err(DeError::custom(format!(
            "expected map, found {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        Ok(deserialize_entries(content)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Content {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        Ok(deserialize_entries(content)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content.as_seq("set")?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content.as_seq("set")?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq("VecDeque")?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&some.serialize()).unwrap(), some);
        assert_eq!(Option::<u32>::deserialize(&none.serialize()).unwrap(), none);
        assert_eq!(Option::<u32>::deserialize_missing("x").unwrap(), None);
    }

    #[test]
    fn tuple_and_map_roundtrip() {
        let m: BTreeMap<(u8, u8), String> =
            [((1, 2), "a".to_string()), ((3, 4), "b".to_string())].into();
        let back = BTreeMap::<(u8, u8), String>::deserialize(&m.serialize()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn u128_large_values_roundtrip() {
        for v in [0u128, u64::MAX as u128, u128::MAX, 1u128 << 97] {
            assert_eq!(u128::deserialize(&v.serialize()).unwrap(), v);
        }
    }
}
