//! Umbrella crate for the GRIPhoN reproduction workspace.
//!
//! Re-exports every layer so the `examples/` and cross-crate integration
//! `tests/` at the repository root can reach the whole stack through one
//! dependency. Library users should depend on the individual crates
//! (`griphon`, `photonic`, `otn`, `cloud`, `simcore`) directly.

#![deny(missing_docs)]

pub use cloud;
pub use griphon;
pub use otn;
pub use photonic;
pub use simcore;
