//! Cross-crate integration: the CSP-facing stack (portal, replication,
//! deadline scheduler) driving the carrier stack end to end, with
//! failures in the middle of the workload.

use cloud::replication::ReplicationPolicy;
use cloud::scheduler::DeadlineBodPolicy;
use cloud::{CspPortal, DataCenterSet};
use griphon::controller::{Controller, ControllerConfig};
use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};
use simcore::{DataRate, DataSize, SimDuration};

fn carrier() -> (Controller, photonic::TestbedIds) {
    let (net, ids) = PhotonicNetwork::testbed(10);
    let mut ctl = Controller::new(
        net,
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        },
    );
    ctl.add_otn_switch(ids.i, DataRate::from_gbps(320));
    ctl.add_otn_switch(ids.iv, DataRate::from_gbps(320));
    ctl.provision_trunk(ids.i, ids.iv, LineRate::Gbps10)
        .unwrap();
    ctl.run_until_idle();
    (ctl, ids)
}

#[test]
fn replication_workload_completes_despite_fiber_cut() {
    let (mut ctl, ids) = carrier();
    let account = ctl.tenants.register("acme", DataRate::from_gbps(300));
    let mut dcs = DataCenterSet::new();
    let a = dcs.add("east", ids.i, DataRate::from_gbps(40));
    let b = dcs.add("west", ids.iv, DataRate::from_gbps(40));
    let portal = CspPortal::new(account, dcs);

    // One nightly backup: east → west, 15 TB, generous deadline.
    let policy = ReplicationPolicy::PeriodicBackup {
        target: b,
        period: SimDuration::from_hours(2),
        snapshot: DataSize::from_terabytes(15),
        deadline_frac: 3.0,
    };
    let mut next = 0;
    let jobs = policy.jobs(&portal.dcs, SimDuration::from_hours(3), &mut next);
    assert_eq!(jobs.len(), 1);
    assert!(jobs.iter().all(|j| j.from == a && j.to == b));

    // The backhoe has already struck the direct I–IV fiber; repair is
    // 8 hours out. The whole workload must ride detours, transparently
    // to the CSP.
    ctl.inject_fiber_cut(ids.f_i_iv, 0);
    ctl.schedule_repair(ids.f_i_iv, SimDuration::from_hours(8));
    let out = DeadlineBodPolicy::default().run(
        &mut ctl,
        account,
        ids.i,
        ids.iv,
        jobs,
        SimDuration::from_hours(12),
        SimDuration::from_secs(60),
    );
    assert_eq!(out.log.completed, 1, "backup completes despite the cut");
    assert!((out.log.deadline_hit_rate - 1.0).abs() < 1e-9);

    // Carrier accounting is clean afterwards.
    ctl.run_until_idle();
    assert_eq!(ctl.tenants.get(account).unwrap().in_use, DataRate::ZERO);
    // The trunk survived or was restored — still ready.
    assert!(ctl.trunks().iter().all(|t| t.ready));
    // Views render and agree on the big picture.
    let cv = ctl.carrier_view();
    assert!(cv.contains("trunks: 1 (1 ready)"), "{cv}");
}

#[test]
fn portal_prevents_overselling_while_carrier_would_accept() {
    let (mut ctl, ids) = carrier();
    let account = ctl.tenants.register("acme", DataRate::from_gbps(300));
    let mut dcs = DataCenterSet::new();
    let a = dcs.add("east", ids.i, DataRate::from_gbps(20));
    let b = dcs.add("west", ids.iv, DataRate::from_gbps(20));
    let mut portal = CspPortal::new(account, dcs);
    portal
        .order(&mut ctl, a, b, DataRate::from_gbps(12))
        .unwrap();
    // Carrier quota (300 G) and plant would allow more, but the 20 G
    // access pipes must not.
    let err = portal
        .order(&mut ctl, a, b, DataRate::from_gbps(10))
        .unwrap_err();
    assert!(matches!(err, cloud::PortalError::AccessPipeFull { .. }));
    ctl.run_until_idle();
    // What was ordered is exactly what is committed at the carrier.
    assert_eq!(
        ctl.tenants.get(account).unwrap().in_use,
        DataRate::from_gbps(12)
    );
}
