//! The paper's quantitative and qualitative claims, asserted as tests.
//!
//! These are the "shape" guarantees `EXPERIMENTS.md` documents: if a
//! refactor breaks the calibration or inverts an ordering the paper
//! depends on, this suite fails.

use griphon_bench::experiments::{self, measure_setup};

/// Table 2: our means must sit within 3% of the paper's three points.
#[test]
fn table2_within_three_percent() {
    for (hops, paper) in [(1usize, 62.48), (2, 65.67), (3, 70.94)] {
        let (mean, sd) = measure_setup(hops, 10, 42);
        assert!(
            (mean - paper).abs() / paper < 0.03,
            "{hops} hops: {mean:.2}±{sd:.2} vs paper {paper}"
        );
    }
}

/// Table 2's growth is superlinear in hops (the equalization mechanism),
/// and the increments match the paper's to within a second.
#[test]
fn table2_increments_match() {
    let (m1, _) = measure_setup(1, 10, 1);
    let (m2, _) = measure_setup(2, 10, 1);
    let (m3, _) = measure_setup(3, 10, 1);
    let d12 = m2 - m1;
    let d23 = m3 - m2;
    assert!(d23 > d12, "superlinear: {d12:.2} then {d23:.2}");
    assert!(
        (d12 - 3.19).abs() < 1.0,
        "paper increment 3.19, ours {d12:.2}"
    );
    assert!(
        (d23 - 5.27).abs() < 1.0,
        "paper increment 5.27, ours {d23:.2}"
    );
}

/// §1 item 3 ordering: 1+1 ≪ OTN shared-mesh ≪ GRIPhoN restoration ≪
/// manual repair — each at least an order of magnitude apart.
#[test]
fn restoration_hierarchy_holds() {
    let out = experiments::e2_restoration();
    // Parse the measured column coarsely: the mechanisms are printed in
    // order and the test re-derives the numbers instead of scraping.
    assert!(out.contains("sub-second"));
    // 1+1: 50 ms fixed. OTN mesh: sub-second. GRIPhoN: ~minute+. Manual: 8 h.
    // Re-derive GRIPhoN's first-restored outage:
    use griphon::controller::{Controller, ControllerConfig};
    use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};
    use simcore::DataRate;
    let (net, ids) = PhotonicNetwork::testbed(4);
    let mut ctl = Controller::new(
        net,
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        },
    );
    let csp = ctl.tenants.register("t", DataRate::from_gbps(100));
    let id = ctl
        .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
        .unwrap();
    ctl.run_until_idle();
    ctl.inject_fiber_cut(ids.f_i_iv, 0);
    ctl.run_until_idle();
    let griphon = ctl.connection(id).unwrap().outage_total.as_secs_f64();
    let one_plus_one = 0.05;
    let otn_mesh = 0.2; // sub-second shared-mesh activation (see otn tests)
    let manual = 8.0 * 3600.0;
    assert!(one_plus_one * 2.0 < otn_mesh);
    assert!(otn_mesh * 10.0 < griphon);
    assert!(griphon * 100.0 < manual);
    assert!((60.0..300.0).contains(&griphon), "minutes, not {griphon}");
}

/// §2.2: bridge-and-roll is orders of magnitude gentler than a cold
/// reroute.
#[test]
fn bridge_and_roll_beats_cold_reroute_by_1000x() {
    let out = experiments::e3_maintenance();
    // Derive the two hits from the experiment's own metrics instead of
    // scraping the table text.
    assert!(out.contains("bridge-and-roll"));
    use griphon::controller::{Controller, ControllerConfig};
    use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};
    use simcore::DataRate;
    let (net, ids) = PhotonicNetwork::testbed(8);
    let mut ctl = Controller::new(
        net,
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        },
    );
    let csp = ctl.tenants.register("t", DataRate::from_gbps(100));
    let a = ctl
        .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
        .unwrap();
    let b = ctl
        .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
        .unwrap();
    ctl.run_until_idle();
    ctl.bridge_and_roll(a, &[]).unwrap();
    ctl.run_until_idle();
    let roll_ms = ctl
        .metrics
        .get_histogram("maintenance.hit_ms")
        .unwrap()
        .mean();
    ctl.cold_reroute(b, &[]).unwrap();
    ctl.run_until_idle();
    let cold_s = ctl.connection(b).unwrap().outage_total.as_secs_f64();
    assert!(
        cold_s * 1_000.0 / roll_ms > 1_000.0,
        "cold {cold_s}s vs roll {roll_ms}ms"
    );
}

/// §2.1: OTN grooming never lights more wavelength·links than
/// muxponder-only packing, and wins clearly on transit-heavy loads.
#[test]
fn grooming_dominance() {
    let out = experiments::e6_grooming();
    for line in out.lines().skip(2) {
        let cells: Vec<&str> = line.split_whitespace().collect();
        if cells.len() >= 3 {
            if let (Ok(otn), Ok(mxp)) = (cells[1].parse::<u64>(), cells[2].parse::<u64>()) {
                assert!(otn <= mxp, "{line}");
            }
        }
    }
}

/// §2.2's 12 G example decomposes exactly as the paper describes.
#[test]
fn composite_example_matches_paper() {
    let d = griphon::Decomposition::plan(simcore::DataRate::from_gbps(12), 4);
    assert_eq!(d.wavelengths_10g, 1);
    assert_eq!(d.otn_1g, 2);
}

/// E7: a fixed-iteration (jointly optimized) equalization policy turns
/// the quadratic hop dependence linear, and the optimized EMS brings
/// setup under 20 s — §4's "no fundamental limitations" claim.
#[test]
fn ablation_shapes() {
    let out = experiments::e7_ablation();
    assert!(out.contains("calibrated"));
    // The detailed shape asserts live in the bench crate's unit tests;
    // here we just require all three variants rendered six columns.
    let data_rows: Vec<&str> = out
        .lines()
        .filter(|l| l.contains("equalization") || l.contains("optimized"))
        .collect();
    assert_eq!(data_rows.len(), 3);
}

/// Every figure target renders non-empty and self-validates.
#[test]
fn figures_render() {
    assert!(experiments::fig_layers(false).contains("SONET"));
    assert!(experiments::fig_layers(true).contains("OTN"));
    let f4 = experiments::fig4();
    assert!(f4.contains("3-degree"));
    let f3 = experiments::fig3();
    assert!(f3.contains("[up]"));
}

/// Table 1 renders with all four vision rows quantified.
#[test]
fn table1_rows_present() {
    let t1 = experiments::table1();
    for needle in [
        "dynamic configurable rate",
        "rapid connection setup",
        "reduced outage time",
        "minimal maintenance impact",
        "622",
        "bridge-and-roll",
    ] {
        assert!(t1.contains(needle), "missing {needle:?} in:\n{t1}");
    }
}
