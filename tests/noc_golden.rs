//! NOC artifact determinism: the `repro noc` scenarios are a pure
//! function of their fixed seeds, so the Prometheus exposition and the
//! machine-readable `BENCH_noc.json` must be byte-identical across runs
//! — and must match the committed golden files.
//!
//! If a controller change intentionally alters the telemetry or the
//! alarm cascade, regenerate with
//! `cargo run -p griphon-bench --bin repro -- noc` and copy
//! `noc_exposition.txt` over `tests/golden/noc_exposition.txt` and
//! `BENCH_noc.json` over `tests/golden/noc_bench.json`.

use griphon_bench::noc_target;

#[test]
fn two_runs_produce_byte_identical_artifacts() {
    let (ra, ea) = noc_target::build(&noc_target::outcomes());
    let (rb, eb) = noc_target::build(&noc_target::outcomes());
    assert_eq!(ea, eb, "exposition must be deterministic");
    let ja = serde_json::to_string_pretty(&ra).unwrap();
    let jb = serde_json::to_string_pretty(&rb).unwrap();
    assert_eq!(ja, jb, "BENCH_noc.json must be deterministic");
}

#[test]
fn artifacts_match_committed_goldens() {
    let outcomes = noc_target::outcomes();
    let (mut report, exposition) = noc_target::build(&outcomes);
    report.exposition_file = "noc_exposition.txt".to_string();
    let golden_expo = include_str!("golden/noc_exposition.txt");
    assert_eq!(
        exposition, golden_expo,
        "exposition drifted from tests/golden/noc_exposition.txt — if the \
         change is intentional, regenerate with `cargo run -p griphon-bench \
         --bin repro -- noc` and copy noc_exposition.txt over the golden file"
    );
    let json = serde_json::to_string_pretty(&report).unwrap();
    let golden_json = include_str!("golden/noc_bench.json").trim_end();
    assert_eq!(
        json, golden_json,
        "BENCH_noc.json drifted from tests/golden/noc_bench.json — if the \
         change is intentional, regenerate with `cargo run -p griphon-bench \
         --bin repro -- noc` and copy BENCH_noc.json over the golden file"
    );
}
