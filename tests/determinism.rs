//! Reproducibility: the entire stack is a deterministic function of the
//! seed. Two controllers with the same configuration and order stream
//! must agree event for event; changing the seed must change the jitter.

use griphon::controller::{Controller, ControllerConfig};
use photonic::{LineRate, PhotonicNetwork};
use simcore::{DataRate, SimDuration};

fn run_scenario(seed: u64) -> (Vec<f64>, u64, String) {
    run_scenario_with_cache(seed, true)
}

fn run_scenario_with_cache(seed: u64, use_route_cache: bool) -> (Vec<f64>, u64, String) {
    run_scenario_opts(seed, use_route_cache, false)
}

fn run_scenario_opts(seed: u64, use_route_cache: bool, spans: bool) -> (Vec<f64>, u64, String) {
    run_scenario_full(seed, use_route_cache, spans, false, false)
}

fn run_scenario_full(
    seed: u64,
    use_route_cache: bool,
    spans: bool,
    noc: bool,
    wal: bool,
) -> (Vec<f64>, u64, String) {
    let (net, ids) = PhotonicNetwork::testbed(8);
    let mut ctl = Controller::new(
        net,
        ControllerConfig {
            seed,
            rwa: griphon::rwa::RwaConfig {
                use_route_cache,
                ..griphon::rwa::RwaConfig::default()
            },
            ..ControllerConfig::default()
        },
    );
    ctl.spans.set_enabled(spans);
    if noc {
        ctl.noc.enable(SimDuration::from_secs(30));
    }
    if wal {
        ctl.enable_journal(griphon::WalConfig::default());
    }
    let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
    let mut conns = Vec::new();
    for _ in 0..3 {
        conns.push(
            ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                .unwrap(),
        );
    }
    ctl.run_until_idle();
    ctl.inject_fiber_cut(ids.f_i_iv, 0);
    ctl.schedule_repair(ids.f_i_iv, SimDuration::from_hours(4));
    ctl.run_until_idle();
    let outages: Vec<f64> = conns
        .iter()
        .map(|c| ctl.connection(*c).unwrap().outage_total.as_secs_f64())
        .collect();
    (outages, ctl.events_processed(), ctl.trace.dump())
}

#[test]
fn same_seed_identical_run() {
    let (o1, e1, t1) = run_scenario(12345);
    let (o2, e2, t2) = run_scenario(12345);
    assert_eq!(o1, o2);
    assert_eq!(e1, e2);
    assert_eq!(t1, t2, "trace must match byte for byte");
}

/// The route cache is a pure memoisation layer: switching it off must
/// not change a single event, outage, or trace byte.
#[test]
fn route_cache_does_not_change_outcomes() {
    let (o_on, e_on, t_on) = run_scenario_with_cache(777, true);
    let (o_off, e_off, t_off) = run_scenario_with_cache(777, false);
    assert_eq!(o_on, o_off, "outages must not depend on the route cache");
    assert_eq!(
        e_on, e_off,
        "event count must not depend on the route cache"
    );
    assert_eq!(t_on, t_off, "trace must match byte for byte");
}

/// Span recording is pure observation: switching it on must not change a
/// single event, outage, or trace byte — and switching it off must leave
/// the recorder allocation-free (the cheap guard that instrumented
/// controllers pay nothing when tracing is disabled).
#[test]
fn span_recording_does_not_change_outcomes() {
    let (o_off, e_off, t_off) = run_scenario_opts(4242, true, false);
    let (o_on, e_on, t_on) = run_scenario_opts(4242, true, true);
    assert_eq!(o_on, o_off, "outages must not depend on span recording");
    assert_eq!(e_on, e_off, "event count must not depend on span recording");
    assert_eq!(t_on, t_off, "trace must match byte for byte");

    let (net, ids) = PhotonicNetwork::testbed(4);
    let mut ctl = Controller::new(net, ControllerConfig::default());
    let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
    let id = ctl
        .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
        .unwrap();
    ctl.run_until_idle();
    ctl.request_teardown(id).unwrap();
    ctl.run_until_idle();
    assert_eq!(
        ctl.spans.buffered_capacity(),
        0,
        "a disabled recorder must never allocate, even across full workflows"
    );
}

/// The NOC is pure observation: enabling the scrape + correlation engine
/// must not change a single event, outage, or trace byte (it runs on its
/// own scheduler and writes only to its own metric families) — while
/// still actually observing the run.
#[test]
fn noc_observation_does_not_change_outcomes() {
    let (o_off, e_off, t_off) = run_scenario_full(555, true, false, false, false);
    let (o_on, e_on, t_on) = run_scenario_full(555, true, false, true, false);
    assert_eq!(o_on, o_off, "outages must not depend on the NOC");
    assert_eq!(e_on, e_off, "event count must not depend on the NOC");
    assert_eq!(t_on, t_off, "trace must match byte for byte");
}

/// The write-ahead log is pure observation: journaling every northbound
/// intent must not change a single event, outage, or trace byte.
#[test]
fn wal_journaling_does_not_change_outcomes() {
    let (o_off, e_off, t_off) = run_scenario_full(606, true, false, false, false);
    let (o_on, e_on, t_on) = run_scenario_full(606, true, false, false, true);
    assert_eq!(o_on, o_off, "outages must not depend on the journal");
    assert_eq!(e_on, e_off, "event count must not depend on the journal");
    assert_eq!(t_on, t_off, "trace must match byte for byte");
}

/// Same contract at the scenario-runner level: the full replayed report
/// and the canonical state digest are byte-identical with the WAL on or
/// off, and the WAL-on run actually journaled the intent stream.
#[test]
fn scenario_report_is_identical_wal_on_or_off() {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/testbed_outage.json"
    ))
    .expect("read scenario");
    let spec_off: griphon_bench::scenario::ScenarioSpec = serde_json::from_str(&json).unwrap();
    let mut spec_on = spec_off.clone();
    spec_on.wal = true;
    let (out_off, ctl_off) = griphon_bench::scenario::run_with(&spec_off).unwrap();
    let (out_on, ctl_on) = griphon_bench::scenario::run_with(&spec_on).unwrap();
    assert_eq!(out_on, out_off, "report must match byte for byte");
    assert_eq!(ctl_on.events_processed(), ctl_off.events_processed());
    assert_eq!(
        ctl_on.state_digest(),
        ctl_off.state_digest(),
        "state digest must match byte for byte"
    );
    assert!(ctl_off.journal().is_none(), "WAL-off run must not journal");
    let wal = ctl_on.journal().expect("WAL-on run journals");
    assert!(wal.records() > 0, "the intent stream must have been logged");
}

/// Same contract at the scenario-runner level: the full replayed report
/// (orders, restorations, SLA, carrier metrics) is byte-identical with
/// the NOC on or off, and the NOC-on run scraped and correlated.
#[test]
fn scenario_report_is_identical_noc_on_or_off() {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/testbed_outage.json"
    ))
    .expect("read scenario");
    let spec_off: griphon_bench::scenario::ScenarioSpec = serde_json::from_str(&json).unwrap();
    let mut spec_on = spec_off.clone();
    spec_on.noc_scrape_secs = Some(60);
    let (out_off, ctl_off) = griphon_bench::scenario::run_with(&spec_off).unwrap();
    let (out_on, ctl_on) = griphon_bench::scenario::run_with(&spec_on).unwrap();
    assert_eq!(out_on, out_off, "report must match byte for byte");
    assert_eq!(ctl_on.events_processed(), ctl_off.events_processed());
    assert!(!ctl_off.noc.is_enabled() && ctl_off.noc.families.is_empty());
    assert!(ctl_on.noc.scrapes() > 0, "NOC-on run must have scraped");
    assert_eq!(ctl_on.noc.unattributed(), 0);
    assert!(ctl_on.noc.suppressed_total() > 0);
}

#[test]
fn different_seed_different_jitter() {
    let (o1, _, _) = run_scenario(1);
    let (o2, _, _) = run_scenario(2);
    assert_ne!(o1, o2, "jitter must depend on the seed");
    // But the shape is stable: every outage within the same minute-scale
    // band.
    for (a, b) in o1.iter().zip(&o2) {
        assert!((a - b).abs() < 20.0, "{a} vs {b}");
    }
}

/// Sharding is pure scheduling: driving the scale workload's cells with
/// 1, 2, or 8 worker threads must produce byte-identical per-cell state
/// digests on a mid-size (~100-ROADM) generated plant. Each cell owns
/// its controller, `parallel_cells_with` merges results in input order,
/// and nothing a cell computes may depend on which worker ran it.
#[test]
fn sharded_execution_matches_unsharded_digests() {
    let seed = 0xD1CE;
    let one = griphon_bench::scale_target::shard_digests(100, seed, 1);
    let two = griphon_bench::scale_target::shard_digests(100, seed, 2);
    let eight = griphon_bench::scale_target::shard_digests(100, seed, 8);
    assert!(!one.is_empty(), "the plant must yield workload cells");
    assert_eq!(one, two, "2-thread digests diverged from unsharded");
    assert_eq!(one, eight, "8-thread digests diverged from unsharded");
}

#[test]
fn workload_generation_is_seed_stable() {
    use cloud::workload::{WorkloadConfig, WorkloadGenerator};
    let jobs = |seed| {
        let mut g = WorkloadGenerator::new(WorkloadConfig::default(), seed);
        g.full_mesh(
            &[
                (cloud::DataCenterId::new(0), cloud::DataCenterId::new(1)),
                (cloud::DataCenterId::new(1), cloud::DataCenterId::new(2)),
            ],
            SimDuration::from_hours(24 * 30),
        )
    };
    assert_eq!(jobs(9), jobs(9));
    assert_ne!(jobs(9), jobs(10));
}

/// Observing the fleet must not change it: per-cell state digests of
/// the SLO workload are byte-identical with spans + metrics + tail
/// sampling enabled and with all telemetry off.
#[test]
fn telemetry_is_observationally_passive() {
    let seed = griphon_bench::slo_target::point_seed(14);
    let off = griphon_bench::slo_target::telemetry_digests(14, seed, 2, false);
    let on = griphon_bench::slo_target::telemetry_digests(14, seed, 2, true);
    assert!(!off.is_empty(), "the plant must yield workload cells");
    assert_eq!(
        off, on,
        "enabling telemetry changed controller state digests"
    );
}

/// Tail sampling and the per-region rollup are pure functions of the
/// ingested spans: cell digests *and* the fleet exposition text must be
/// byte-identical for 1, 2, and 8 worker threads.
#[test]
fn fleet_telemetry_is_thread_independent() {
    let seed = griphon_bench::slo_target::point_seed(14);
    let one = griphon_bench::slo_target::fleet_fingerprint(14, seed, 1);
    let two = griphon_bench::slo_target::fleet_fingerprint(14, seed, 2);
    let eight = griphon_bench::slo_target::fleet_fingerprint(14, seed, 8);
    assert_eq!(one, two, "2-thread fleet telemetry diverged");
    assert_eq!(one, eight, "8-thread fleet telemetry diverged");
}

/// The measurement plane is pure observation: per-cell state digests of
/// the stationary measured-BoD grid (fixed / estimated / oracle sizing)
/// are byte-identical with probing spans + tail sampling + metric
/// families enabled and with observability off.
#[test]
fn measurement_is_observationally_passive() {
    let off = griphon_bench::measure_target::measure_digests(2, false);
    let on = griphon_bench::measure_target::measure_digests(2, true);
    assert!(!off.is_empty(), "the grid must yield measured cells");
    assert_eq!(
        off, on,
        "enabling the measurement plane changed controller state digests"
    );
}

/// Probing, estimation, and the estimate exposition are pure functions
/// of the seeds: cell digests *and* the exposition bytes must be
/// identical for 1, 2, and 8 worker threads.
#[test]
fn measurement_plane_is_thread_independent() {
    let one = griphon_bench::measure_target::measure_fingerprint(1);
    let two = griphon_bench::measure_target::measure_fingerprint(2);
    let eight = griphon_bench::measure_target::measure_fingerprint(8);
    assert_eq!(one, two, "2-thread measurement plane diverged");
    assert_eq!(one, eight, "8-thread measurement plane diverged");
}

/// The northbound service plane leaves zero residue in controller
/// state: replaying the admitted-intent stream of a full server run
/// (auth, token buckets, bounded queues, quota, priority drains, spans,
/// metrics) against a bare controller yields a byte-identical state
/// digest.
#[test]
fn api_server_is_observationally_passive() {
    use northbound::{
        build_testbed, generate_fleet, replay_admitted, ApiServer, FleetConfig, ServerConfig,
        TenantDirectory,
    };
    let cfg = FleetConfig {
        tenants: 5_000,
        seed: 0x0FF,
        ..FleetConfig::default()
    };
    let dir = TenantDirectory::new(cfg.tenants, cfg.seed);
    let requests = generate_fleet(&cfg, &dir);
    let mut server = ApiServer::new(
        build_testbed(14, cfg.pairs, cfg.seed),
        dir,
        ServerConfig::default(),
    );
    server.run(&requests, cfg.horizon);
    let outcome = server.finish();
    assert!(!outcome.admitted.is_empty(), "the run must admit intents");
    let off = replay_admitted(
        build_testbed(14, cfg.pairs, cfg.seed),
        &outcome.admitted,
        cfg.horizon,
    );
    assert_eq!(
        outcome.digest_crc, off,
        "the service plane left residue in controller state"
    );
}

/// The serve grid is pure scheduling: server-on cell digests must be
/// byte-identical for 1, 2, and 8 worker threads.
#[test]
fn serve_grid_is_thread_independent() {
    let one = griphon_bench::serve_target::serve_fingerprint(1);
    let two = griphon_bench::serve_target::serve_fingerprint(2);
    let eight = griphon_bench::serve_target::serve_fingerprint(8);
    assert!(!one.is_empty(), "the grid must yield serve cells");
    assert_eq!(one, two, "2-thread serve grid diverged");
    assert_eq!(one, eight, "8-thread serve grid diverged");
}
