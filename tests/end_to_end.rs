//! End-to-end integration: one continuous scenario exercising every
//! subsystem across crate boundaries — testbed bring-up, OTN layer,
//! composite BoD, a fiber cut with automated restoration, planned
//! maintenance with bridge-and-roll, re-grooming, and an inventory
//! snapshot at the end.

use griphon::controller::{Controller, ControllerConfig};
use griphon::{ConnState, InventorySnapshot};
use otn::ClientSignal;
use photonic::{EmsProfile, EqualizationModel, FiberState, LineRate, PhotonicNetwork};
use simcore::{DataRate, SimDuration};

fn quiet() -> ControllerConfig {
    ControllerConfig {
        ems: EmsProfile::calibrated_deterministic(),
        equalization: EqualizationModel::calibrated_deterministic(),
        ..ControllerConfig::default()
    }
}

#[test]
fn full_lifecycle_scenario() {
    // ── Phase 0: plant bring-up ─────────────────────────────────────
    let (net, ids) = PhotonicNetwork::testbed(10);
    let mut ctl = Controller::new(net, quiet());
    ctl.add_otn_switch(ids.i, DataRate::from_gbps(320));
    ctl.add_otn_switch(ids.iii, DataRate::from_gbps(320));
    ctl.add_otn_switch(ids.iv, DataRate::from_gbps(320));
    ctl.provision_trunk(ids.i, ids.iii, LineRate::Gbps10)
        .unwrap();
    ctl.provision_trunk(ids.iii, ids.iv, LineRate::Gbps10)
        .unwrap();
    ctl.run_until_idle();
    assert!(ctl.trunks().iter().all(|t| t.ready));

    let acme = ctl.tenants.register("acme", DataRate::from_gbps(100));
    let bravo = ctl.tenants.register("bravo", DataRate::from_gbps(50));

    // ── Phase 1: composite BoD + plain circuits ─────────────────────
    let bundle = ctl
        .request_bandwidth(acme, ids.i, ids.iv, DataRate::from_gbps(12))
        .unwrap();
    let bravo_wl = ctl
        .request_wavelength(bravo, ids.ii, ids.iii, LineRate::Gbps10)
        .unwrap();
    let bravo_sub = ctl
        .request_subwavelength(bravo, ids.i, ids.iv, ClientSignal::GbE)
        .unwrap();
    ctl.run_until_idle();
    assert_eq!(ctl.bundle_active_rate(&bundle), DataRate::from_gbps(12));
    assert_eq!(ctl.connection(bravo_wl).unwrap().state, ConnState::Active);
    assert_eq!(ctl.connection(bravo_sub).unwrap().state, ConnState::Active);
    // Tenant accounting adds up.
    assert_eq!(
        ctl.tenants.get(acme).unwrap().in_use,
        DataRate::from_gbps(12)
    );
    assert_eq!(
        ctl.tenants.get(bravo).unwrap().in_use,
        DataRate::from_gbps(11)
    );

    // ── Phase 2: fiber cut hits the bundle's wavelength ─────────────
    // Find the fiber the bundle's λ member uses.
    let wl_member = *bundle
        .members
        .iter()
        .find(|m| {
            matches!(
                ctl.connection(**m).unwrap().kind,
                griphon::ConnectionKind::Wavelength { .. }
            )
        })
        .unwrap();
    let cut_fiber = ctl
        .connection(wl_member)
        .unwrap()
        .wavelength_plan()
        .unwrap()
        .path[0];
    ctl.inject_fiber_cut(cut_fiber, 0);
    ctl.schedule_repair(cut_fiber, SimDuration::from_hours(8));
    ctl.run_until_idle();
    // Everything is back (restoration or trunk recovery), long before
    // the 8-hour repair would have.
    for c in ctl.connections() {
        if !c.state.is_terminal() {
            assert_eq!(
                c.state,
                ConnState::Active,
                "{} stuck in {:?}",
                c.id,
                c.state
            );
        }
    }
    let outage = ctl.connection(wl_member).unwrap().outage_total;
    assert!(outage > SimDuration::ZERO);
    assert!(outage < SimDuration::from_mins(10), "outage={outage}");

    // ── Phase 3: planned maintenance on a loaded fiber ──────────────
    let target = ids.f_i_iii;
    let moved = ctl.start_fiber_maintenance(target).unwrap();
    ctl.run_until_idle();
    assert!(matches!(
        ctl.net.fiber(target).state,
        FiberState::Maintenance
    ));
    // Bridge-and-roll added no outage to the moved connections.
    for id in &moved {
        let c = ctl.connection(*id).unwrap();
        assert_eq!(c.state, ConnState::Active);
    }
    if let Some(h) = ctl.metrics.get_histogram("maintenance.hit_ms") {
        assert!(h.max() < 1_000.0, "roll hit must be sub-second");
    }
    ctl.end_fiber_maintenance(target);
    assert!(ctl.net.fiber(target).is_up());

    // ── Phase 4: teardown and final accounting ──────────────────────
    ctl.release_bundle(&bundle);
    ctl.request_teardown(bravo_wl).unwrap();
    ctl.request_teardown(bravo_sub).unwrap();
    ctl.run_until_idle();
    assert_eq!(ctl.tenants.get(acme).unwrap().in_use, DataRate::ZERO);
    assert_eq!(ctl.tenants.get(bravo).unwrap().in_use, DataRate::ZERO);

    let snap = InventorySnapshot::capture(&ctl);
    // All customer circuits released…
    assert_eq!(snap.connections_in(ConnState::Released), {
        bundle.members.len() + 2
    });
    // …and all transponders back in the pool except the trunks' four.
    assert_eq!(snap.idle_ots(), 40 - 4);
    // Snapshot survives serialization.
    let back = InventorySnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(snap, back);
}

#[test]
fn customer_views_stay_isolated_through_faults() {
    let (net, ids) = PhotonicNetwork::testbed(8);
    let mut ctl = Controller::new(net, quiet());
    let a = ctl.tenants.register("acme", DataRate::from_gbps(100));
    let b = ctl.tenants.register("bravo", DataRate::from_gbps(100));
    let ca = ctl
        .request_wavelength(a, ids.i, ids.iv, LineRate::Gbps10)
        .unwrap();
    ctl.request_wavelength(b, ids.ii, ids.iii, LineRate::Gbps10)
        .unwrap();
    ctl.run_until_idle();
    ctl.inject_fiber_cut(ids.f_i_iv, 0);
    // During the outage, only A sees trouble.
    let va = ctl.customer_view(a);
    let vb = ctl.customer_view(b);
    assert!(va.contains("OUTAGE"));
    assert!(!vb.contains("OUTAGE"));
    assert!(!vb.contains(&ca.to_string()));
    ctl.run_until_idle();
    assert!(ctl.customer_view(a).contains("[up]"));
}

#[test]
fn grooming_layers_compose_with_controller() {
    // Sub-wavelength circuits from three customers share one trunk; the
    // OTN switch's slot accounting must match the controller's view.
    let (net, ids) = PhotonicNetwork::testbed(6);
    let mut ctl = Controller::new(net, quiet());
    ctl.add_otn_switch(ids.i, DataRate::from_gbps(320));
    ctl.add_otn_switch(ids.iv, DataRate::from_gbps(320));
    let trunk = ctl
        .provision_trunk(ids.i, ids.iv, LineRate::Gbps10)
        .unwrap();
    ctl.run_until_idle();
    let mut ids_conn = Vec::new();
    for i in 0..3 {
        let c = ctl
            .tenants
            .register(format!("csp{i}"), DataRate::from_gbps(10));
        ids_conn.push(
            ctl.request_subwavelength(c, ids.i, ids.iv, ClientSignal::GbE)
                .unwrap(),
        );
    }
    ctl.run_until_idle();
    assert_eq!(ctl.trunk_free_ts(trunk), 8 - 3);
    // An ODU2 (8 TS) can no longer fit.
    let big = ctl.tenants.register("big", DataRate::from_gbps(100));
    assert!(ctl
        .request_subwavelength(big, ids.i, ids.iv, ClientSignal::TenGbE)
        .is_err());
    // Release one; slots return.
    ctl.request_teardown(ids_conn[0]).unwrap();
    ctl.run_until_idle();
    assert_eq!(ctl.trunk_free_ts(trunk), 8 - 2);
}
