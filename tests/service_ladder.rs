//! The full "guaranteed bandwidth" service ladder of Figs. 1–2, climbed
//! end to end: n×DS1 (W-DCS) → STS-n/VCAT (SONET) → ODU (OTN) →
//! wavelength (DWDM) — every demand lands on the layer §2.1's rate
//! categorization says it should, on the layer implementation that
//! actually carries it.

use griphon::{Layer, LayerStack};
use otn::wdcs::WdcsNode;
use otn::{ClientSignal, OduRate, SonetNetwork};
use simcore::DataRate;

/// Walk demands from 1.5 Mbps to 40 Gbps up today's stack (Fig. 1).
#[test]
fn todays_stack_carries_each_rate_at_the_right_layer() {
    let stack = LayerStack::current();
    let mut wdcs = WdcsNode::new(4);
    let mut sonet = SonetNetwork::today();

    // 10 Mbps → W-DCS as 7×DS1 (below the IP/EVC tier in Fig. 1's TDM
    // column; the figure's mapping is by service type, the W-DCS carries
    // the TDM private-line variant).
    let c = wdcs.provision(DataRate::from_mbps(10)).unwrap();
    assert_eq!(c.group.0, 7);

    // 500 Mbps guaranteed-bandwidth → SONET BoD as 10×STS-1… within the
    // 622 M ceiling.
    let svc = sonet.provision(DataRate::from_mbps(500), true).unwrap();
    assert_eq!(svc.group.0, 10);
    assert_eq!(
        stack.layer_for_service(DataRate::from_mbps(500)),
        Layer::Ip,
        "sub-1G guaranteed bandwidth is an EVC in the service model"
    );

    // 2 G → the sub-wavelength layer (SONET today): the SONET *BoD*
    // ceiling refuses it — exactly the gap Table 1 row 1 records.
    assert_eq!(
        stack.layer_for_service(DataRate::from_gbps(2)),
        Layer::Sonet
    );
    assert!(sonet.provision(DataRate::from_gbps(2), false).is_err());

    // 10 G+ → DWDM.
    assert_eq!(
        stack.layer_for_service(DataRate::from_gbps(10)),
        Layer::Dwdm
    );
}

/// The future stack (Fig. 2) closes today's 2 G gap with OTN.
#[test]
fn future_stack_closes_the_sub_wavelength_gap() {
    let stack = LayerStack::future();
    // 2 G maps to OTN…
    assert_eq!(stack.layer_for_service(DataRate::from_gbps(2)), Layer::Otn);
    // …and OTN really can carry it: ODU1 payload ≈ 2.498 G is too small
    // for a full 2.5G client, but an ODUflex right-sizes it.
    let flex = OduRate::flex_for(DataRate::from_gbps(2)).unwrap();
    assert!(flex.payload() >= DataRate::from_gbps(2));
    assert_eq!(flex.ts_needed(), 2);
    // The standard mappings hold for the common clients.
    assert_eq!(ClientSignal::GbE.odu_mapping(), OduRate::Odu0);
    assert_eq!(ClientSignal::TenGbE.odu_mapping(), OduRate::Odu2);
    // And BoD exists at both OTN and DWDM in the future stack.
    assert!(stack.bod_layers.contains(&Layer::Otn));
    assert!(stack.bod_layers.contains(&Layer::Dwdm));
}

/// W-DCS, SONET and OTN slot arithmetic agree about the boundaries
/// between layers: each layer's ceiling is the next layer's floor.
#[test]
fn layer_boundaries_interlock() {
    // W-DCS ceiling: anything ≥ DS3 (≈45 M) is refused upward.
    let mut wdcs = WdcsNode::new(10);
    assert!(wdcs.provision(DataRate::from_mbps(44)).is_ok());
    assert!(wdcs.provision(DataRate::from_mbps(45)).is_err());
    // SONET floor covers that refusal: 45 M is 1×STS-1… no, STS-1 is
    // 51.84 M — 45 M fits one channel.
    let mut sonet = SonetNetwork::today();
    let svc = sonet.provision(DataRate::from_mbps(45), false).unwrap();
    assert_eq!(svc.group.0, 1);
    // SONET BoD ceiling (622 M) is far below OTN's smallest container
    // ceiling region; ODU0 starts at 1.244 G ≥ 1 GbE.
    assert!(OduRate::Odu0.payload() >= ClientSignal::GbE.rate());
}
