//! HA artifact determinism: the `repro ha` crash schedule is a pure
//! function of the embedded scenarios (all latencies are sim time, no
//! host wall clock), so `BENCH_ha.json` must be byte-identical across
//! runs — and must match the committed golden file.
//!
//! If a controller change intentionally alters the log format, the
//! crash schedule, or the failover model, regenerate with
//! `cargo run -p griphon-bench --bin repro -- ha` and copy
//! `BENCH_ha.json` over `tests/golden/ha_bench.json`.

use griphon_bench::ha_target;

#[test]
fn report_matches_committed_golden() {
    let report = ha_target::build();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let golden = include_str!("golden/ha_bench.json").trim_end();
    assert_eq!(
        json, golden,
        "BENCH_ha.json drifted from tests/golden/ha_bench.json — if the \
         change is intentional, regenerate with `cargo run -p griphon-bench \
         --bin repro -- ha` and copy BENCH_ha.json over the golden file"
    );
}
