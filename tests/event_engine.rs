//! The event-driven workload engine against its tick oracle.
//!
//! The contract (DESIGN.md §8): with decisions restricted to tick
//! boundaries, every policy's event-driven `run` must produce a
//! `PolicyOutcome` byte-identical to the retained fixed-tick loop
//! (`run_tick_reference`), for *any* job set, rate profile, tick and
//! horizon — including profiles whose breakpoints are not tick-aligned
//! (the engine snaps them to the grid exactly as the tick loop samples
//! them). These properties drive random workloads through both engines
//! and require exact equality; the controller-backed policies also
//! require the twin controllers to land in identical states.

use proptest::prelude::*;

use cloud::scheduler::{
    BodPolicy, DeadlineBodPolicy, MultiPairBod, PolicyOutcome, StaticLinePolicy, StoreForwardPolicy,
};
use cloud::{BulkJob, DataCenterId, JobId, RateProfile};
use griphon::controller::Controller;
use griphon_bench::experiments::quiet_testbed;
use simcore::{DataRate, DataSize, SimDuration, SimTime};

/// (size GB, created s, optional deadline offset s) → job list.
fn jobs_from(spec: &[(u64, u64, Option<u64>)]) -> Vec<BulkJob> {
    spec.iter()
        .enumerate()
        .map(|(i, (gb, created_s, deadline_off))| {
            let created = SimTime::from_secs(*created_s);
            BulkJob {
                id: JobId::new(i as u32),
                from: DataCenterId::new(0),
                to: DataCenterId::new(1),
                size: DataSize::from_gigabytes(*gb),
                created,
                deadline: deadline_off.map(|d| created + SimDuration::from_secs(d)),
            }
        })
        .collect()
}

/// (time s, gbps) steps → profile. Breakpoints are *not* tick-aligned in
/// general — the engine must snap them exactly as the oracle samples.
fn profile_from(steps: &[(u64, u64)]) -> RateProfile {
    RateProfile::from_steps(
        steps
            .iter()
            .map(|(s, g)| (SimTime::from_secs(*s), DataRate::from_gbps(*g)))
            .collect(),
    )
}

fn job_spec() -> impl Strategy<Value = Vec<(u64, u64, Option<u64>)>> {
    prop::collection::vec(
        (
            1u64..3_000,
            0u64..120_000,
            prop::option::of(600u64..150_000),
        ),
        0..25,
    )
}

fn profile_spec() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..200_000, 0u64..30), 0..12)
}

/// Assert the two controllers of a twin run are indistinguishable.
fn assert_controllers_equal(a: &mut Controller, b: &mut Controller) {
    assert_eq!(a.now(), b.now(), "controller clocks diverged");
    assert_eq!(
        a.events_processed(),
        b.events_processed(),
        "controller event counts diverged"
    );
    assert_eq!(a.trace.dump(), b.trace.dump(), "controller traces diverged");
}

proptest! {
    /// Static line: event engine ≡ tick oracle on arbitrary workloads,
    /// line rates, ticks, horizons and (unaligned) profiles.
    #[test]
    fn static_line_event_matches_tick_oracle(
        spec in job_spec(),
        steps in profile_spec(),
        line_gbps in 1u64..60,
        tick_s in 5u64..180,
        horizon_h in 1u64..60,
    ) {
        let jobs = jobs_from(&spec);
        let profile = profile_from(&steps);
        let horizon = SimDuration::from_hours(horizon_h);
        let tick = SimDuration::from_secs(tick_s);
        let policy = StaticLinePolicy { line: DataRate::from_gbps(line_gbps) };
        let event = policy.run(jobs.clone(), horizon, tick, &profile);
        let oracle =
            policy.run_tick_reference(jobs, horizon, tick, &|t| profile.rate_at(t));
        prop_assert_eq!(event, oracle);
    }

    /// Store-and-forward: the relay phase shifts exercise breakpoints
    /// seen through shifted clocks; equality must still be exact.
    #[test]
    fn store_forward_event_matches_tick_oracle(
        spec in job_spec(),
        steps in profile_spec(),
        line_gbps in 1u64..40,
        tick_s in 5u64..180,
        horizon_h in 1u64..48,
        relays in 0usize..3,
        phase_tenths in 1u64..120,
    ) {
        let jobs = jobs_from(&spec);
        let profile = profile_from(&steps);
        let horizon = SimDuration::from_hours(horizon_h);
        let tick = SimDuration::from_secs(tick_s);
        let policy = StoreForwardPolicy {
            line: DataRate::from_gbps(line_gbps),
            relays,
            relay_phase_hours: phase_tenths as f64 / 10.0,
        };
        let event = policy.run(jobs.clone(), horizon, tick, &profile);
        let oracle =
            policy.run_tick_reference(jobs, horizon, tick, &|t| profile.rate_at(t));
        prop_assert_eq!(event, oracle);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// BoD with a live controller: twin controllers, one per engine,
    /// must produce identical outcomes *and* identical controller state
    /// (clock, event count, full trace).
    #[test]
    fn bod_event_matches_tick_oracle(
        spec in job_spec(),
        drain_mins in 10u64..180,
        idle_mins in 1u64..60,
        max_gbps in 1u64..5,
    ) {
        let jobs = jobs_from(&spec);
        let horizon = SimDuration::from_hours(24);
        let tick = SimDuration::from_secs(60);
        let policy = BodPolicy {
            max_rate: DataRate::from_gbps(max_gbps * 10),
            drain_target: SimDuration::from_mins(drain_mins),
            idle_release: SimDuration::from_mins(idle_mins),
        };
        let (mut ctl_e, ids_e) = quiet_testbed(10);
        let csp_e = ctl_e.tenants.register("t", DataRate::from_gbps(400));
        let event =
            policy.run(&mut ctl_e, csp_e, ids_e.i, ids_e.iv, jobs.clone(), horizon, tick);
        let (mut ctl_t, ids_t) = quiet_testbed(10);
        let csp_t = ctl_t.tenants.register("t", DataRate::from_gbps(400));
        let oracle = policy
            .run_tick_reference(&mut ctl_t, csp_t, ids_t.i, ids_t.iv, jobs, horizon, tick);
        prop_assert_eq!(event, oracle);
        assert_controllers_equal(&mut ctl_e, &mut ctl_t);
    }

    /// Deadline-aware BoD: the binary search over inert decision ticks
    /// must never change what the tick loop would have ordered.
    #[test]
    fn deadline_bod_event_matches_tick_oracle(
        spec in job_spec(),
        margin_mins in 1u64..30,
        drain_h in 1u64..8,
    ) {
        let jobs = jobs_from(&spec);
        let horizon = SimDuration::from_hours(24);
        let tick = SimDuration::from_secs(60);
        let policy = DeadlineBodPolicy {
            provisioning_margin: SimDuration::from_mins(margin_mins),
            background_drain: SimDuration::from_hours(drain_h),
            ..DeadlineBodPolicy::default()
        };
        let (mut ctl_e, ids_e) = quiet_testbed(10);
        let csp_e = ctl_e.tenants.register("t", DataRate::from_gbps(400));
        let event =
            policy.run(&mut ctl_e, csp_e, ids_e.i, ids_e.iv, jobs.clone(), horizon, tick);
        let (mut ctl_t, ids_t) = quiet_testbed(10);
        let csp_t = ctl_t.tenants.register("t", DataRate::from_gbps(400));
        let oracle = policy
            .run_tick_reference(&mut ctl_t, csp_t, ids_t.i, ids_t.iv, jobs, horizon, tick);
        prop_assert_eq!(event, oracle);
        assert_controllers_equal(&mut ctl_e, &mut ctl_t);
    }
}

/// One full-mesh multi-pair run under the event engine.
fn multi_pair_run() -> (Vec<PolicyOutcome>, String, u64) {
    let horizon = SimDuration::from_hours(30);
    let tick = SimDuration::from_secs(60);
    let (mut ctl, ids) = quiet_testbed(10);
    let csp = ctl.tenants.register("t", DataRate::from_gbps(400));
    let mk = |base: u32, pair: u64| {
        jobs_from(&[
            (900 + 40 * pair, 1_000 * pair, None),
            (2_400, 20_000 + 777 * pair, Some(90_000)),
            (60, 45_000 + 300 * pair, None),
            (1_500, 70_000, None),
        ])
        .into_iter()
        .enumerate()
        .map(|(i, mut j)| {
            j.id = JobId::new(base + i as u32);
            j
        })
        .collect::<Vec<_>>()
    };
    let pairs = vec![
        (ids.i, ids.iv, mk(0, 1)),
        (ids.i, ids.iii, mk(10, 2)),
        (ids.iii, ids.iv, mk(20, 3)),
    ];
    let outcomes = MultiPairBod {
        policy: BodPolicy {
            max_rate: DataRate::from_gbps(30),
            drain_target: SimDuration::from_hours(1),
            idle_release: SimDuration::from_mins(10),
        },
    }
    .run(&mut ctl, csp, pairs, horizon, tick);
    (outcomes, ctl.trace.dump(), ctl.events_processed())
}

/// The event engine is deterministic run to run: same inputs, fresh
/// controller, byte-identical outcomes, trace and event count.
#[test]
fn multi_pair_event_engine_is_deterministic() {
    let (o1, trace1, n1) = multi_pair_run();
    let (o2, trace2, n2) = multi_pair_run();
    assert_eq!(o1, o2);
    assert_eq!(trace1, trace2);
    assert_eq!(n1, n2);
}
