//! Measurement-plane artifact determinism: the exposition `repro
//! measure` writes — the stationary scenario's estimated-mode metric
//! families (estimate/error histograms with exemplars, probe counters,
//! sampler gauges) — is a pure function of the fixed seeds and must
//! match the committed golden byte for byte, whatever `REPRO_THREADS`
//! or `SCALE_SWEEP` is.
//!
//! If a change intentionally alters the measurement telemetry (new
//! metric, different probe config, sampler policy change), regenerate
//! with `cargo run --release -p griphon-bench --bin repro -- measure`
//! and copy `measure_exposition.txt` over
//! `tests/golden/measure_exposition.txt`.

#[test]
fn exposition_matches_committed_golden() {
    let exposition = griphon_bench::measure_target::golden_exposition();
    let golden = include_str!("golden/measure_exposition.txt");
    assert_eq!(
        exposition, golden,
        "measurement exposition drifted from tests/golden/measure_exposition.txt"
    );
}
