//! Serve artifact determinism: every number in the serve grid except
//! the host intents/sec column is sim time (admission latencies are
//! arrival → hand-off on the event clock), so the reduced grid plus the
//! fairness pair is a pure function of the embedded configuration — and
//! must match the committed golden file byte for byte.
//!
//! If a northbound change intentionally alters admission behaviour, the
//! fleet generator, or the report shape, regenerate with
//! `cargo test --test serve_golden -- --ignored regenerate` (writes the
//! golden in place) or copy the `points`/`fairness` sections of a
//! `SCALE_SWEEP=reduced` `BENCH_serve.json` run.

use griphon_bench::serve_target;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/serve_bench.json");

#[test]
fn report_matches_committed_golden() {
    let report = serve_target::build();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("read tests/golden/serve_bench.json")
        .trim_end()
        .to_string();
    assert_eq!(
        json, golden,
        "serve report drifted from tests/golden/serve_bench.json — if the \
         change is intentional, regenerate with `cargo test --test \
         serve_golden -- --ignored regenerate`"
    );
}

/// Not a test: rewrites the golden file from the current tree. Run with
/// `cargo test --test serve_golden -- --ignored regenerate`.
#[test]
#[ignore]
fn regenerate() {
    let report = serve_target::build();
    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write(GOLDEN_PATH, json + "\n").expect("write golden");
}
