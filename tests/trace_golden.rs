//! Span-stream determinism: the `repro trace` scenarios are a pure
//! function of their (fixed) seeds, so two runs must produce
//! byte-identical span streams — and therefore byte-identical Chrome
//! trace JSON — and the JSON must match the committed golden file.
//!
//! If a controller change intentionally alters the instrumented
//! workflows, regenerate with
//! `cargo run -p griphon-bench --bin repro -- trace` and copy
//! `BENCH_trace_chrome.json` over `tests/golden/trace_chrome.json`.

use griphon_bench::trace_target;

#[test]
fn two_runs_produce_byte_identical_chrome_traces() {
    let first = trace_target::build(&trace_target::scenarios()).1;
    let second = trace_target::build(&trace_target::scenarios()).1;
    assert_eq!(first, second, "span streams must be deterministic");
}

#[test]
fn chrome_trace_matches_committed_golden() {
    let scenarios = trace_target::scenarios();
    let (report, chrome) = trace_target::build(&scenarios);
    trace_target::check_chrome_trace(&chrome, report.spans_recorded);
    let golden = include_str!("golden/trace_chrome.json");
    assert_eq!(
        chrome, golden,
        "chrome trace drifted from tests/golden/trace_chrome.json — if the \
         change is intentional, regenerate with `cargo run -p griphon-bench \
         --bin repro -- trace` and copy BENCH_trace_chrome.json over the \
         golden file"
    );
}
