//! The shipped `scenarios/*.json` files must always parse and run —
//! they are documentation that executes.

use std::fs;

fn run_file(path: &str) -> String {
    let json = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    griphon_bench::scenario::run_json(&json).unwrap_or_else(|e| panic!("run {path}: {e}"))
}

#[test]
fn testbed_outage_scenario_runs() {
    let out = run_file("scenarios/testbed_outage.json");
    assert!(out.contains("CUT I–IV"), "{out}");
    assert!(out.contains("maintenance done I–III"), "{out}");
    // Both reports present plus the final state.
    assert_eq!(out.matches("===== report at").count(), 2);
    assert!(out.contains("===== final state"));
    // The 1+1 circuit's 50 ms switchover shows in the metrics.
    assert!(out.contains("protection.switch_ms"), "{out}");
}

#[test]
fn backbone_week_scenario_runs() {
    let out = run_file("scenarios/backbone_week.json");
    assert!(out.contains("Seattle"), "{out}");
    assert!(out.contains("CUT Lincoln–Champaign"));
    assert!(out.contains("===== final state at t+168h00m00s"), "{out}");
    // All three circuits end the week up.
    let final_part = out.split("===== final state").last().unwrap();
    assert_eq!(final_part.matches("[up]").count(), 3, "{final_part}");
}

#[test]
fn shipped_scenarios_are_deterministic() {
    for f in [
        "scenarios/testbed_outage.json",
        "scenarios/backbone_week.json",
    ] {
        assert_eq!(run_file(f), run_file(f), "{f} must replay identically");
    }
}
