//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;

use griphon::rwa::{k_shortest_paths, plan_wavelength, RwaConfig};
use otn::{ClientSignal, OtnSwitch};
use photonic::{LineRate, PhotonicNetwork};
use simcore::{DataRate, DataSize, Histogram, Scheduler, SimDuration, SimRng, SimTime};

proptest! {
    /// The scheduler always delivers in non-decreasing time order, with
    /// FIFO tiebreak, whatever the insertion order.
    #[test]
    fn scheduler_orders_any_insertion(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut s = Scheduler::new();
        for (i, t) in times.iter().enumerate() {
            s.schedule_at(SimTime::from_secs(*t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut prev_t = None;
        while let Some((t, idx)) = s.pop() {
            prop_assert!(t >= last_time);
            if prev_t == Some(t) {
                // FIFO within equal timestamps: indices ascend.
                prop_assert!(*seen_at_time.last().unwrap() < idx);
                seen_at_time.push(idx);
            } else {
                seen_at_time = vec![idx];
            }
            prev_t = Some(t);
            last_time = t;
        }
    }

    /// Cancelling an arbitrary subset never delivers a cancelled event
    /// and delivers every survivor exactly once.
    #[test]
    fn scheduler_cancellation(spec in prop::collection::vec((0u64..100, any::<bool>()), 1..100)) {
        let mut s = Scheduler::new();
        let mut expect = Vec::new();
        let mut cancel_ids = Vec::new();
        for (i, (t, cancel)) in spec.iter().enumerate() {
            let id = s.schedule_at(SimTime::from_secs(*t), i);
            if *cancel {
                cancel_ids.push(id);
            } else {
                expect.push(i);
            }
        }
        for id in cancel_ids {
            prop_assert!(s.cancel(id));
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, i)) = s.pop() {
            got.push(i);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// size / rate round-trips: transferring `size.time_at(rate)` at
    /// `rate` moves at least `size` (within integer rounding).
    #[test]
    fn rate_size_roundtrip(bytes in 1u64..u64::MAX / 16, gbps in 1u64..400) {
        let size = DataSize::from_bytes(bytes);
        let rate = DataRate::from_gbps(gbps);
        let t = size.time_at(rate);
        let moved = rate.over(t + SimDuration::from_nanos(1));
        prop_assert!(moved >= size, "moved {moved} < {size}");
    }

    /// Histogram quantiles are monotone and bounded by min/max.
    #[test]
    fn histogram_quantile_bounds(values in prop::collection::vec(0.0f64..1e9, 1..500)) {
        let mut h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        prop_assert!(q25 <= q50 + 1e-9);
        prop_assert!(q50 <= q99 + 1e-9);
        prop_assert!(q99 <= h.max() + 1e-9);
        prop_assert!(h.min() <= q25 + 1e-9);
    }

    /// Erlang-B stays in [0,1], decreases in servers, increases in load.
    #[test]
    fn erlang_b_properties(a in 0.1f64..50.0, n in 1usize..60) {
        use griphon::planning::erlang_b;
        let b = erlang_b(a, n);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(erlang_b(a, n + 1) <= b + 1e-12);
        prop_assert!(erlang_b(a + 1.0, n) >= b - 1e-12);
    }

    /// Every RWA plan on NSFNET is well-formed: contiguous loop-free
    /// path, on-grid wavelength free end to end, endpoint OTs idle and
    /// local, regens only at intermediate nodes.
    #[test]
    fn rwa_plans_are_well_formed(from_i in 0usize..14, to_i in 0usize..14, rate_i in 0usize..2) {
        prop_assume!(from_i != to_i);
        let rate = [LineRate::Gbps10, LineRate::Gbps40][rate_i];
        let net = PhotonicNetwork::nsfnet(4, rate, 3);
        let from = net.roadm_ids().nth(from_i).unwrap();
        let to = net.roadm_ids().nth(to_i).unwrap();
        if let Ok(plan) = plan_wavelength(&net, &RwaConfig::default(), from, to, rate, &[]) {
            let nodes = net.node_sequence(from, &plan.path);
            prop_assert_eq!(*nodes.last().unwrap(), to);
            // Loop-free.
            let mut sorted = nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), nodes.len());
            // Wavelength continuity.
            for f in &plan.path {
                prop_assert!(net.lambda_free_on_fiber(*f, plan.lambda));
            }
            // OTs at the right places, idle, right rate.
            let src = net.transponder(plan.ot_src);
            let dst = net.transponder(plan.ot_dst);
            prop_assert_eq!(src.location, from);
            prop_assert_eq!(dst.location, to);
            prop_assert!(src.is_idle() && dst.is_idle());
            prop_assert_eq!(src.rate, rate);
            // Regens strictly at intermediate nodes.
            for r in &plan.regens {
                let loc = net.regen(*r).location;
                prop_assert!(nodes[1..nodes.len() - 1].contains(&loc));
            }
        }
    }

    /// Yen's paths are distinct, loop-free, and sorted by length.
    #[test]
    fn yen_paths_sorted_distinct(from_i in 0usize..14, to_i in 0usize..14, k in 1usize..6) {
        prop_assume!(from_i != to_i);
        let net = PhotonicNetwork::nsfnet(0, LineRate::Gbps10, 0);
        let from = net.roadm_ids().nth(from_i).unwrap();
        let to = net.roadm_ids().nth(to_i).unwrap();
        let paths = k_shortest_paths(&net, from, to, k);
        prop_assert!(!paths.is_empty());
        for w in paths.windows(2) {
            prop_assert!(net.path_km(&w[0]) <= net.path_km(&w[1]) + 1e-9);
            prop_assert_ne!(&w[0], &w[1]);
        }
        for p in &paths {
            let nodes = net.node_sequence(from, p);
            let mut sorted = nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), nodes.len(), "loop in path");
        }
    }

    /// OTN switch slot accounting: arbitrary connect/disconnect
    /// sequences conserve tributary slots exactly.
    #[test]
    fn otn_slot_conservation(ops in prop::collection::vec((any::<bool>(), 0usize..8), 1..100)) {
        let mut sw = OtnSwitch::new(
            otn::switch::OtnSwitchId::new(0),
            photonic::RoadmId::new(0),
            DataRate::from_gbps(320),
        );
        let line = sw.add_line_port(LineRate::Gbps10);
        let mut live: Vec<otn::XcId> = Vec::new();
        let mut expected_used = 0usize;
        for (connect, pick) in ops {
            if connect {
                let client = sw.add_client_port(ClientSignal::GbE);
                match sw.connect_client_to_line(client, line) {
                    Ok(xc) => {
                        live.push(xc);
                        expected_used += 1;
                    }
                    Err(_) => prop_assert_eq!(expected_used, 8, "only full port may refuse"),
                }
            } else if !live.is_empty() {
                let xc = live.remove(pick % live.len());
                sw.disconnect(xc).unwrap();
                expected_used -= 1;
            }
            prop_assert_eq!(sw.free_ts(line), 8 - expected_used);
        }
    }

    /// Transfers conserve bytes under arbitrary rate schedules.
    #[test]
    fn transfer_conservation(steps in prop::collection::vec((0u64..50, 1u64..600), 1..50)) {
        use cloud::{BulkJob, Transfer};
        let job = BulkJob {
            id: cloud::JobId::new(0),
            from: cloud::DataCenterId::new(0),
            to: cloud::DataCenterId::new(1),
            size: DataSize::from_gigabytes(100),
            created: SimTime::ZERO,
            deadline: None,
        };
        let mut t = Transfer::new(job.clone());
        let mut now = SimTime::ZERO;
        for (gbps, secs) in steps {
            t.advance(now, SimDuration::from_secs(secs), DataRate::from_gbps(gbps));
            now += SimDuration::from_secs(secs);
            prop_assert!(t.remaining <= job.size);
            if let Some(done) = t.completed {
                prop_assert!(done <= now);
                prop_assert!(t.remaining.is_zero());
            }
        }
    }

    /// ROADM configuration under arbitrary connect/disconnect sequences:
    /// a (degree, λ) is never double-assigned, and disconnecting always
    /// returns exactly what connecting took.
    #[test]
    fn roadm_invariants_under_churn(
        ops in prop::collection::vec((any::<bool>(), 0u16..8, 0u8..3), 1..150)
    ) {
        use photonic::roadm::{Roadm, RoadmId};
        use photonic::{ChannelGrid, FiberId, Wavelength};
        let mut r = Roadm::new(RoadmId::new(0), ChannelGrid::C_BAND_40);
        let d0 = r.add_degree(FiberId::new(0));
        let d1 = r.add_degree(FiberId::new(1));
        let d2 = r.add_degree(FiberId::new(2));
        let degs = [d0, d1, d2];
        // Shadow model: set of (degree, λ) in use via express pairs.
        let mut live: Vec<(photonic::Wavelength, photonic::DegreeId, photonic::DegreeId)> =
            Vec::new();
        for (connect, w_raw, d_pick) in ops {
            let w = Wavelength(w_raw);
            let (da, db) = match d_pick {
                0 => (d0, d1),
                1 => (d1, d2),
                _ => (d0, d2),
            };
            if connect {
                let expect_ok = r.lambda_free(da, w) && r.lambda_free(db, w);
                let got = r.connect_express(w, da, db);
                prop_assert_eq!(got.is_ok(), expect_ok);
                if expect_ok {
                    live.push((w, da, db));
                }
            } else if let Some(i) = live.iter().position(|(lw, _, _)| *lw == w) {
                let (lw, la, lb) = live.remove(i);
                r.disconnect_express(lw, la, lb).unwrap();
            }
            // Invariant: lit count per degree equals the shadow model.
            for d in degs {
                let model = live.iter().filter(|(_, a, b)| *a == d || *b == d).count();
                prop_assert_eq!(r.lit_count(d), model);
            }
        }
        // Full drain leaves everything free.
        for (w, a, b) in live.drain(..) {
            r.disconnect_express(w, a, b).unwrap();
        }
        for d in degs {
            prop_assert_eq!(r.lit_count(d), 0);
        }
    }

    /// The deterministic RNG's below() is always in range and shuffle
    /// always permutes.
    #[test]
    fn rng_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(r.below(n) < n);
        }
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 1+1 plans are always fully disjoint in fibers and endpoint OTs,
    /// on arbitrary NSFNET endpoints.
    #[test]
    fn protection_pairs_always_disjoint(from_i in 0usize..14, to_i in 0usize..14) {
        prop_assume!(from_i != to_i);
        use griphon::controller::{Controller, ControllerConfig};
        use griphon::connection::Resources;
        let net = PhotonicNetwork::nsfnet(4, LineRate::Gbps10, 2);
        let from = net.roadm_ids().nth(from_i).unwrap();
        let to = net.roadm_ids().nth(to_i).unwrap();
        let mut ctl = Controller::new(net, ControllerConfig::default());
        let csp = ctl.tenants.register("t", DataRate::from_gbps(1000));
        if let Ok(id) = ctl.request_protected_wavelength(csp, from, to, LineRate::Gbps10) {
            let c = ctl.connection(id).unwrap();
            let Some(Resources::Protected { working, protect, .. }) = &c.resources else {
                panic!("protected resources expected");
            };
            for f in &working.path {
                prop_assert!(!protect.path.contains(f), "legs share {f}");
            }
            prop_assert_ne!(working.ot_src, protect.ot_src);
            prop_assert_ne!(working.ot_dst, protect.ot_dst);
            for r in &working.regens {
                prop_assert!(!protect.regens.contains(r), "legs share regen");
            }
        }
    }

    /// Calendar admission never lets overlapping bookings exceed the
    /// pair capacity, for arbitrary booking sequences.
    #[test]
    fn calendar_never_overbooks(
        bookings in prop::collection::vec((0u64..100, 1u64..50, 1u64..30), 1..40)
    ) {
        use griphon::controller::{Controller, ControllerConfig};
        use griphon::ReservationState;
        let (net, ids) = PhotonicNetwork::testbed(2);
        let mut ctl = Controller::new(net, ControllerConfig::default());
        let csp = ctl.tenants.register("t", DataRate::from_gbps(100_000));
        let cap = DataRate::from_gbps(40);
        ctl.set_booking_capacity(ids.i, ids.iv, cap);
        let mut accepted: Vec<(u64, u64, u64)> = Vec::new();
        for (start_h, len_h, gbps) in bookings {
            let start = SimTime::from_secs((start_h + 1) * 3600);
            let end = start + SimDuration::from_secs(len_h * 3600);
            if ctl
                .reserve_bandwidth(csp, ids.i, ids.iv, DataRate::from_gbps(gbps), start, end)
                .is_ok()
            {
                accepted.push((start_h + 1, start_h + 1 + len_h, gbps));
            }
        }
        // Check capacity at every hour boundary.
        for h in 0..200u64 {
            let committed: u64 = accepted
                .iter()
                .filter(|(s, e, _)| *s <= h && h < *e)
                .map(|(_, _, g)| *g)
                .sum();
            prop_assert!(
                committed <= 40,
                "hour {h}: {committed} G booked over 40 G cap"
            );
        }
        // Bookings really exist.
        let booked = ctl
            .reservation(griphon::ReservationId::new(0))
            .map(|r| matches!(r.state, ReservationState::Booked));
        if !accepted.is_empty() {
            prop_assert_eq!(booked, Some(true));
        }
    }

    /// Reserve → cancel → re-reserve churn against an exact shadow
    /// model: cancellation frees booked capacity exactly once (a second
    /// cancel is refused and releases nothing), admission decisions
    /// match the model at every step, and after cancelling everything
    /// the full pair capacity is reusable — no leak, no double release.
    #[test]
    fn calendar_cancel_frees_capacity_exactly_once(
        // (kind+start packed: kind = code % 4, start_h = code / 4 —
        // the vendored proptest implements Strategy for ≤4-tuples).
        ops in prop::collection::vec((0u64..192, 1u64..24, 1u64..30, 0usize..32), 1..60)
    ) {
        use griphon::controller::{Controller, ControllerConfig};
        let (net, ids) = PhotonicNetwork::testbed(2);
        let mut ctl = Controller::new(net, ControllerConfig::default());
        let csp = ctl.tenants.register("t", DataRate::from_gbps(100_000));
        ctl.set_booking_capacity(ids.i, ids.iv, DataRate::from_gbps(40));
        // Shadow model: (start_h, end_h, gbps, still_booked).
        let mut model: Vec<(u64, u64, u64, bool)> = Vec::new();
        let mut booked_ids: Vec<griphon::ReservationId> = Vec::new();
        for (code, len_h, gbps, pick) in ops {
            let (kind, start_h) = (code % 4, code / 4);
            if kind == 0 && !model.is_empty() {
                // Cancel a random booking — possibly one already
                // cancelled (double-cancel must be a refused no-op).
                let i = pick % model.len();
                let expect = model[i].3;
                prop_assert_eq!(
                    ctl.cancel_reservation(booked_ids[i]),
                    expect,
                    "cancel must succeed iff the booking is still live"
                );
                model[i].3 = false;
            } else {
                let start_h = start_h + 1;
                let end_h = start_h + len_h;
                // Mirror the admission rule: committed = sum of live
                // bookings overlapping the window.
                let committed: u64 = model
                    .iter()
                    .filter(|(s, e, _, live)| *live && *s < end_h && start_h < *e)
                    .map(|(_, _, g, _)| *g)
                    .sum();
                let expect_ok = gbps <= 40u64.saturating_sub(committed);
                let got = ctl.reserve_bandwidth(
                    csp,
                    ids.i,
                    ids.iv,
                    DataRate::from_gbps(gbps),
                    SimTime::from_secs(start_h * 3600),
                    SimTime::from_secs(end_h * 3600),
                );
                prop_assert_eq!(
                    got.is_ok(),
                    expect_ok,
                    "admission diverged from the shadow model"
                );
                if let Ok(id) = got {
                    model.push((start_h, end_h, gbps, true));
                    booked_ids.push(id);
                }
            }
        }
        // Drain: every live booking cancels exactly once...
        for (i, m) in model.iter_mut().enumerate() {
            if m.3 {
                prop_assert!(ctl.cancel_reservation(booked_ids[i]));
                m.3 = false;
            }
        }
        // ...a second cancel releases nothing...
        for id in &booked_ids {
            prop_assert!(!ctl.cancel_reservation(*id));
        }
        // ...and the full capacity is reusable anywhere.
        prop_assert!(ctl
            .reserve_bandwidth(
                csp,
                ids.i,
                ids.iv,
                DataRate::from_gbps(40),
                SimTime::from_secs(3600),
                SimTime::from_secs(7200),
            )
            .is_ok());
    }

    /// Bitmask first-fit equals the reference wavelength scan on random
    /// ring-plus-chords topologies under arbitrary claim/release churn.
    #[test]
    fn bitmask_first_fit_matches_reference_scan(
        n in 4usize..8,
        chords in prop::collection::vec((0usize..8, 0usize..8), 0..5),
        ops in prop::collection::vec((any::<bool>(), 0usize..64, 0u16..40), 1..120),
        path_picks in prop::collection::vec(0usize..64, 1..8),
    ) {
        use photonic::{ChannelGrid, DegreeId, Wavelength};
        let mut net = PhotonicNetwork::new(ChannelGrid::C_BAND_40);
        let nodes: Vec<_> = (0..n).map(|i| net.add_roadm(format!("n{i}"))).collect();
        for i in 0..n {
            net.link(nodes[i], nodes[(i + 1) % n], 100.0).unwrap();
        }
        for (a, b) in chords {
            let (a, b) = (nodes[a % n], nodes[b % n]);
            if a != b {
                let _ = net.link(a, b, 250.0); // duplicate chords just fail
            }
        }
        let fibers: Vec<_> = net.fiber_ids().collect();
        // Each live claim is (λ, per-endpoint (node, facing degree, other degree)).
        type ClaimEnd = (photonic::RoadmId, DegreeId, DegreeId);
        let mut live: Vec<(Wavelength, [ClaimEnd; 2])> = Vec::new();
        for (connect, pick, w_raw) in ops {
            let w = Wavelength(w_raw);
            if connect {
                let f = fibers[pick % fibers.len()];
                let link = net.fiber(f);
                let (na, nb) = (link.a, link.b);
                let ends = [na, nb].map(|node| {
                    let r = net.roadm(node);
                    let d = r.degree_to(f).unwrap();
                    let d2 = DegreeId::from_index((d.index() + 1) % r.degree_count());
                    (node, d, d2)
                });
                let free = ends.iter().all(|(node, d, d2)| {
                    let r = net.roadm(*node);
                    r.lambda_free(*d, w) && r.lambda_free(*d2, w)
                });
                if free {
                    for (node, d, d2) in ends {
                        net.roadm_mut(node).connect_express(w, d, d2).unwrap();
                    }
                    live.push((w, ends));
                }
            } else if !live.is_empty() {
                let (w, ends) = live.remove(pick % live.len());
                for (node, d, d2) in ends {
                    net.roadm_mut(node).disconnect_express(w, d, d2).unwrap();
                }
            }
            // The AND-reduce first fit must agree with the nested scan on
            // an arbitrary fiber set after every mutation.
            let path: Vec<_> = path_picks.iter().map(|p| fibers[p % fibers.len()]).collect();
            prop_assert_eq!(
                net.first_free_lambda(&path),
                net.first_free_lambda_reference(&path)
            );
        }
        // And per single fiber once the dust settles.
        for f in &fibers {
            prop_assert_eq!(
                net.first_free_lambda(std::slice::from_ref(f)),
                net.first_free_lambda_reference(std::slice::from_ref(f))
            );
        }
    }

    /// Controller invariant under random order/teardown interleavings on
    /// the testbed: tenant accounting and transponder pools always
    /// reconcile after the dust settles, whatever succeeded or failed.
    #[test]
    fn controller_accounting_reconciles(script in prop::collection::vec((0u8..4, 0u8..4), 1..25)) {
        use griphon::controller::{Controller, ControllerConfig};
        use griphon::ConnState;
        let (net, ids) = PhotonicNetwork::testbed(3);
        let mut ctl = Controller::new(net, ControllerConfig::default());
        let csp = ctl.tenants.register("t", DataRate::from_gbps(1_000));
        let nodes = [ids.i, ids.ii, ids.iii, ids.iv];
        let mut conns = Vec::new();
        for (a, b) in script {
            if a == b {
                // Interpret as a teardown of the oldest live connection.
                if let Some(id) = conns.pop() {
                    let _ = ctl.request_teardown(id);
                }
            } else if let Ok(id) = ctl.request_wavelength(
                csp,
                nodes[a as usize],
                nodes[b as usize],
                LineRate::Gbps10,
            ) {
                conns.push(id);
            }
        }
        ctl.run_until_idle();
        // Quota in use must equal 10 G × live connections.
        let live = ctl
            .connections()
            .filter(|c| matches!(c.state, ConnState::Active))
            .count() as u64;
        prop_assert_eq!(
            ctl.tenants.get(csp).unwrap().in_use,
            DataRate::from_gbps(10 * live)
        );
        // Every non-idle OT belongs to a live connection (2 per conn).
        let busy_ots = ctl
            .net
            .transponder_ids()
            .filter(|t| !ctl.net.transponder(*t).is_idle())
            .count();
        prop_assert_eq!(busy_ots as u64, 2 * live);
    }
}

proptest! {
    /// Merging histograms is exactly equivalent to recording the union of
    /// their samples: counts, extrema and (bucket-derived) quantiles are
    /// bit-identical, and the moments agree to rounding.
    #[test]
    fn histogram_merge_equals_union_recording(
        mut a in prop::collection::vec(0.0f64..1e6, 0..80),
        mut b in prop::collection::vec(0.0f64..1e6, 0..80),
        za in 0usize..4,
        zb in 0usize..4,
    ) {
        // Exact zeros take a dedicated path in the histogram; make sure
        // the union property covers it.
        a.extend(std::iter::repeat_n(0.0, za));
        b.extend(std::iter::repeat_n(0.0, zb));
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for v in &a {
            ha.record(*v);
            hu.record(*v);
        }
        for v in &b {
            hb.record(*v);
            hu.record(*v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
        // Sums differ only by float association order.
        let tol = 1e-9 * hu.sum().abs().max(1.0);
        prop_assert!((ha.sum() - hu.sum()).abs() <= tol);
        prop_assert!((ha.mean() - hu.mean()).abs() <= tol);
    }

    /// Merging an empty histogram is the identity (in particular it must
    /// not corrupt min/max with empty-state sentinels).
    #[test]
    fn histogram_merge_with_empty_is_identity(
        a in prop::collection::vec(0.0f64..1e6, 1..40),
    ) {
        let mut h = Histogram::new();
        for v in &a {
            h.record(*v);
        }
        let (count, min, max, sum) = (h.count(), h.min(), h.max(), h.sum());
        h.merge(&Histogram::new());
        prop_assert_eq!(h.count(), count);
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
        prop_assert_eq!(h.sum(), sum);
    }

    /// Time-series integration boundary handling: a zero-width window
    /// integrates to zero, a window before the first point reads the
    /// implicit zero level, and splitting any window at any interior
    /// instant is additive.
    #[test]
    fn time_series_integral_boundaries(
        pts in prop::collection::vec((0u64..1_000, 0.0f64..100.0), 0..40),
        s in 0u64..1_200,
        len in 0u64..1_200,
        cut in 0.0f64..1.0,
    ) {
        let mut sorted = pts.clone();
        sorted.sort_by_key(|(t, _)| *t);
        let mut ts = simcore::TimeSeries::new();
        for (t, v) in &sorted {
            ts.push(SimTime::from_secs(*t), *v);
        }
        let start = SimTime::from_secs(s);
        let end = SimTime::from_secs(s + len);
        // start == end → exactly zero, wherever the window sits relative
        // to the points.
        prop_assert_eq!(ts.integral(start, start), 0.0);
        prop_assert_eq!(ts.integral(end, end), 0.0);
        // Entirely before the first point: the step function is the
        // implicit 0 level, so the integral is exactly zero.
        if let Some((first, _)) = ts.points().first() {
            if end < *first {
                prop_assert_eq!(ts.integral(start, end), 0.0);
            }
        } else {
            prop_assert_eq!(ts.integral(start, end), 0.0);
        }
        // Entirely after the last point: constant at the final value.
        if let Some((last, v)) = ts.points().last() {
            if start >= *last {
                let expect = v * len as f64;
                let tol = 1e-9 * expect.abs().max(1.0);
                prop_assert!((ts.integral(start, end) - expect).abs() <= tol);
            }
        }
        // Split additivity at an arbitrary interior instant.
        let mid = SimTime::from_secs(s + (cut * len as f64) as u64);
        let whole = ts.integral(start, end);
        let split = ts.integral(start, mid) + ts.integral(mid, end);
        let tol = 1e-9 * whole.abs().max(1.0);
        prop_assert!((whole - split).abs() <= tol, "{} vs {}", whole, split);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The plant generator is a pure function of its config: the same
    /// seed and shape must produce a byte-identical plant (Debug output
    /// covers the full topology: grid, ROADMs, fibers, spans, pools).
    #[test]
    fn generator_same_seed_byte_identical(
        seed in any::<u64>(),
        regions in 1usize..6,
        rings in 1usize..3,
        ring_size in 1usize..5,
    ) {
        let cfg = photonic::GeneratorConfig {
            seed,
            regions,
            metro_rings_per_region: rings,
            metro_ring_size: ring_size,
            ..photonic::GeneratorConfig::default_shape(seed)
        };
        let a = photonic::generate(&cfg);
        let b = photonic::generate(&cfg);
        prop_assert_eq!(format!("{:?}", a.net), format!("{:?}", b.net));
        prop_assert_eq!(&a.region_of, &b.region_of);
        prop_assert_eq!(&a.gateways, &b.gateways);
    }

    /// Every generated plant is connected (any node reaches node 0),
    /// whatever the tier parameters.
    #[test]
    fn generator_plant_is_connected(
        seed in any::<u64>(),
        regions in 1usize..8,
        rings in 1usize..4,
        ring_size in 1usize..6,
    ) {
        let cfg = photonic::GeneratorConfig {
            seed,
            regions,
            metro_rings_per_region: rings,
            metro_ring_size: ring_size,
            ..photonic::GeneratorConfig::default_shape(seed)
        };
        let plant = photonic::generate(&cfg);
        let n = plant.net.roadm_count();
        let mut seen = vec![false; n];
        let mut stack = vec![photonic::RoadmId::from_index(0)];
        seen[0] = true;
        let mut reached = 1;
        while let Some(node) = stack.pop() {
            for &(_, next) in plant.net.neighbors(node) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    reached += 1;
                    stack.push(next);
                }
            }
        }
        prop_assert_eq!(reached, n, "plant must be one component");
    }

    /// The channel plan never exceeds the u128 occupancy masks: whatever
    /// `channels` is requested, the built grid is clamped to 80–96 and so
    /// always fits in 128 bits per degree.
    #[test]
    fn generator_channels_fit_occupancy_masks(
        seed in any::<u64>(),
        channels in 0u16..1_000,
    ) {
        let cfg = photonic::GeneratorConfig {
            seed,
            channels,
            ..photonic::GeneratorConfig::with_target_roadms(14, seed)
        };
        let plant = photonic::generate(&cfg);
        prop_assert!((80..=96).contains(&plant.net.grid.channels));
        prop_assert!(plant.net.grid.channels <= 128);
    }

    /// Span auto-splitting: every fiber is cut into `ceil(km / 80)` equal
    /// spans, and the fiber/link count matches the closed-form shape
    /// formula for the tier parameters.
    #[test]
    fn generator_span_counts_match_tier_params(
        seed in any::<u64>(),
        regions in 1usize..7,
        rings in 1usize..3,
        ring_size in 1usize..5,
    ) {
        let cfg = photonic::GeneratorConfig {
            seed,
            regions,
            metro_rings_per_region: rings,
            metro_ring_size: ring_size,
            ..photonic::GeneratorConfig::default_shape(seed)
        };
        let plant = photonic::generate(&cfg);
        prop_assert_eq!(plant.net.fiber_count(), cfg.link_count());
        prop_assert_eq!(plant.net.roadm_count(), cfg.node_count());
        for f in plant.net.fiber_ids() {
            let fiber = plant.net.fiber(f);
            let want = (fiber.length_km() / 80.0).ceil().max(1.0) as usize;
            prop_assert_eq!(
                fiber.spans.len(), want,
                "fiber {:?} of {:.1} km", f, fiber.length_km()
            );
        }
    }
}

// ── fleet observability plane (PR 8) ────────────────────────────────

proptest! {
    /// Exemplar selection is content-addressed (bottom-k over a seeded
    /// hash of each observation), so merging per-shard histograms must
    /// yield exactly the exemplar set of one histogram that saw every
    /// observation — however the observations are split across shards.
    #[test]
    fn exemplar_reservoir_is_sharding_independent(
        obs in prop::collection::vec((0u16..2_000, any::<u64>()), 1..80),
        cuts in prop::collection::vec(0usize..80, 0..6),
        seed in any::<u64>(),
        cap in 1usize..6,
    ) {
        let mut single = Histogram::new();
        single.enable_exemplars(seed, cap);
        for &(v, span) in &obs {
            single.record_linked(v as f64, span, &[]);
        }

        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % obs.len()).collect();
        bounds.push(0);
        bounds.push(obs.len());
        bounds.sort_unstable();
        let mut merged = Histogram::new();
        merged.enable_exemplars(seed, cap);
        for w in bounds.windows(2) {
            let mut shard = Histogram::new();
            shard.enable_exemplars(seed, cap);
            for &(v, span) in &obs[w[0]..w[1]] {
                shard.record_linked(v as f64, span, &[]);
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(single.exemplars(), merged.exemplars());
        prop_assert_eq!(single.count(), merged.count());
    }

    /// The engine's burn rate over a window `(now − w, now]` equals the
    /// brute-force count over the same half-open interval, including at
    /// exact window boundaries.
    #[test]
    fn burn_rate_matches_brute_force_window(
        events in prop::collection::vec((0u64..5_000, any::<bool>()), 1..120),
        now_secs in 0u64..6_000,
        w_mins in 1u64..90,
    ) {
        let mut events = events;
        events.sort_unstable();
        let objective = 0.99;
        let mut eng = griphon::SloEngine::new(vec![griphon::SloSpec {
            name: "avail",
            objective,
            threshold_secs: 0.0,
        }]);
        for &(t, good) in &events {
            eng.observe("avail", "s", SimTime::from_secs(t), good);
        }
        let now = SimTime::from_secs(now_secs);
        let w = SimDuration::from_mins(w_mins);
        let got = eng.burn_rate("avail", "s", now, w);

        let lo = now_secs.saturating_sub(w_mins * 60);
        let in_window: Vec<bool> = events
            .iter()
            .filter(|&&(t, _)| t > lo && t <= now_secs)
            .map(|&(_, good)| good)
            .collect();
        let want = if in_window.is_empty() {
            0.0
        } else {
            let bad = in_window.iter().filter(|g| !**g).count() as f64;
            (bad / in_window.len() as f64) / (1.0 - objective)
        };
        prop_assert!(
            (got - want).abs() < 1e-9,
            "burn {} vs brute force {}", got, want
        );
    }

    /// Absorbing per-region registries into a rollup is equivalent to
    /// recording every sample into one registry with the region label
    /// attached directly — merge must not invent or lose anything.
    #[test]
    fn rollup_absorb_matches_direct_recording(
        samples in prop::collection::vec(
            (0usize..4, 0usize..3, 1u64..100), 1..60,
        ),
    ) {
        use simcore::metrics::FamilyRegistry;
        let mut direct = FamilyRegistry::new();
        let mut per_region: std::collections::BTreeMap<usize, FamilyRegistry> =
            std::collections::BTreeMap::new();
        for &(region, metric, v) in &samples {
            let r = format!("region{region}");
            let cell = per_region.entry(region).or_default();
            match metric {
                0 => {
                    cell.counter("ops_total", &[]).add(v);
                    direct.counter("ops_total", &[("region", &r)]).add(v);
                }
                1 => {
                    cell.gauge("depth", &[]).set(v as f64);
                    direct.gauge("depth", &[("region", &r)]).set(v as f64);
                }
                _ => {
                    cell.histogram("lat_seconds", &[]).record(v as f64);
                    direct
                        .histogram("lat_seconds", &[("region", &r)])
                        .record(v as f64);
                }
            }
        }
        let mut rollup = griphon::TelemetryRollup::new();
        for (region, cell) in &per_region {
            rollup.absorb(&format!("region{region}"), cell);
        }
        prop_assert_eq!(rollup.expose(), direct.expose());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Probe-gap estimation converges under stationary cross traffic:
    /// with noiseless timestamps every train's raw estimate matches the
    /// fluid ground truth, and the EWMA stays inside the jitter band
    /// around the mean free capacity — whatever the load level, jitter
    /// amplitude, or seed.
    #[test]
    fn probe_gap_converges_under_stationary_cross(
        seed in any::<u64>(),
        mean_gbps in 2u64..31,
        jitter in 0u32..20,
    ) {
        use griphon::{CrossTraffic, ProbeConfig, ProbePath, Prober};

        let capacity = DataRate::from_gbps(40);
        let mean = DataRate::from_gbps(mean_gbps);
        let jitter_frac = jitter as f64 / 100.0;
        let horizon = SimTime::from_secs(2 * 3600);
        let path = ProbePath {
            name: "prop:stationary",
            capacity,
            cross: CrossTraffic::stationary(
                seed,
                mean,
                jitter_frac,
                SimDuration::from_secs(60),
                horizon,
            ),
        };
        let mut prober = Prober::new(
            path,
            ProbeConfig { noise_ns: 0.0, ..ProbeConfig::default() },
            seed ^ 0x9806E,
            false,
        );
        prober.advance_to(horizon);
        prop_assert_eq!(prober.probes_dropped(), 0);
        prop_assert!(prober.samples().len() > 100, "only {} trains ran", prober.samples().len());
        // Noiseless probe-gap through a fluid bottleneck is exact per
        // train (small slack for the integer rate grid).
        for s in prober.samples() {
            prop_assert!(
                (s.raw_gbps - s.true_gbps).abs() < 0.05,
                "raw {} vs truth {} at {}", s.raw_gbps, s.true_gbps, s.at
            );
        }
        // The EWMA is a convex combination of raw estimates, so it must
        // converge into the jitter band around the mean free capacity.
        let est = prober.estimate().expect("trains ran").gbps_f64();
        let free = (capacity.gbps_f64()) - mean_gbps as f64;
        let band = jitter_frac * mean_gbps as f64 + 0.1;
        prop_assert!(
            (est - free).abs() <= band,
            "estimate {} outside {} +/- {}", est, free, band
        );
    }
}
