//! Fleet SLO artifact determinism: the exposition `repro slo` writes is
//! a pure function of the fixed seeds — the 14-ROADM sweep point's
//! fleet rollup plus the NSFNET fault week's registry — and must match
//! the committed golden byte for byte, whatever `REPRO_THREADS` is.
//!
//! If a change intentionally alters the fleet telemetry (new metric,
//! different SLO catalogue, sampler policy change), regenerate with
//! `cargo run --release -p griphon-bench --bin repro -- slo` and copy
//! `slo_exposition.txt` over `tests/golden/slo_exposition.txt`.

#[test]
fn exposition_matches_committed_golden() {
    let exposition = griphon_bench::slo_target::golden_exposition();
    let golden = include_str!("golden/slo_exposition.txt");
    assert_eq!(
        exposition, golden,
        "fleet exposition drifted from tests/golden/slo_exposition.txt"
    );
}
