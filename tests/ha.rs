//! Durability contract, end to end at the workspace level: the
//! controller is a deterministic function of genesis plus its intent
//! log, so recovery from **any** crash point — including torn mid-record
//! writes — reconstructs a byte-identical controller (proven against a
//! precomputed digest-per-log-prefix truth table), and a warm standby's
//! takeover equals cold recovery.

use proptest::prelude::*;

use griphon::controller::{Controller, ControllerConfig};
use griphon::durability::recovery::replay;
use griphon::{recover, FailoverConfig, HaPair, SnapshotStore, Wal, WalConfig, WalRecord};
use photonic::{LineRate, PhotonicNetwork};
use simcore::{DataRate, SimDuration, SimTime};

fn genesis() -> Controller {
    let (net, _) = PhotonicNetwork::testbed(4);
    Controller::new(net, ControllerConfig::default())
}

/// Drive a journaling controller through a mixed intent stream:
/// tenancy, wavelengths, a calendar booking and its cancellation, a
/// fiber cut with repair, and a teardown.
fn driven_primary() -> Controller {
    let mut ctl = genesis();
    ctl.enable_journal(WalConfig::default());
    let csp = ctl.register_tenant("acme", DataRate::from_gbps(200));
    let a = photonic::RoadmId::new(0);
    let z = photonic::RoadmId::new(3);
    ctl.run_until(SimTime::from_secs(1));
    let c1 = ctl.request_wavelength(csp, a, z, LineRate::Gbps10).unwrap();
    ctl.run_until(SimTime::from_secs(30));
    let _c2 = ctl.request_wavelength(csp, a, z, LineRate::Gbps10).unwrap();
    ctl.run_until(SimTime::from_secs(60));
    let r = ctl
        .reserve_bandwidth(
            csp,
            a,
            z,
            DataRate::from_gbps(10),
            SimTime::from_secs(7200),
            SimTime::from_secs(10800),
        )
        .unwrap();
    ctl.run_until(SimTime::from_secs(90));
    assert!(ctl.cancel_reservation(r));
    let fiber = photonic::FiberId::new(0);
    ctl.inject_fiber_cut(fiber, 0);
    ctl.schedule_repair(fiber, SimDuration::from_secs(600));
    ctl.run_until(SimTime::from_secs(800));
    let _ = ctl.request_teardown(c1);
    ctl.run_until(SimTime::from_secs(900));
    ctl
}

/// The byte-identity truth table: the canonical digest a controller
/// must have after replaying exactly the first `k` log records and
/// running to `target`.
fn digest_after(records: &[WalRecord], k: usize, target: SimTime) -> String {
    let mut ctl = genesis();
    replay(&mut ctl, &records[..k]).unwrap();
    ctl.run_until(target);
    ctl.state_digest()
}

#[test]
fn full_log_replay_reconstructs_the_primary_exactly() {
    let primary = driven_primary();
    let wal = primary.journal().expect("journal on");
    let (records, report) = Wal::decode(wal.segments()).unwrap();
    assert!(records.len() >= 8, "scenario should journal a rich stream");
    assert_eq!(report.torn_bytes, 0);
    assert_eq!(
        digest_after(&records, records.len(), primary.now()),
        primary.state_digest(),
        "replaying the full log must rebuild the primary byte for byte"
    );
}

#[test]
fn torn_tail_rolls_back_to_the_previous_record() {
    let primary = driven_primary();
    let wal = primary.journal().expect("journal on");
    let (full, _) = Wal::decode(wal.segments()).unwrap();
    let total = wal.total_bytes();
    let target = primary.now();
    let segments = wal.truncated_view(total - 3);
    let outcome = recover(
        genesis,
        &segments,
        &SnapshotStore::new(0),
        target,
        WalConfig::default(),
    )
    .expect("torn tail is a clean crash");
    assert!(outcome.rolled_back_tail);
    assert!(outcome.torn_bytes > 0);
    assert_eq!(outcome.replayed, full.len() as u64 - 1);
    assert_eq!(
        outcome.controller.state_digest(),
        digest_after(&full, full.len() - 1, target)
    );
}

#[test]
fn warm_failover_matches_a_surviving_primary() {
    let mut pair = HaPair::new(
        Box::new(genesis),
        WalConfig::default(),
        2,
        FailoverConfig::default(),
    );
    let csp = pair
        .primary
        .register_tenant("acme", DataRate::from_gbps(200));
    let a = photonic::RoadmId::new(0);
    let z = photonic::RoadmId::new(3);
    pair.primary.run_until(SimTime::from_secs(1));
    let c = pair
        .primary
        .request_wavelength(csp, a, z, LineRate::Gbps10)
        .unwrap();
    pair.primary.run_until(SimTime::from_secs(30));
    pair.sync().unwrap();
    let _ = pair.primary.request_teardown(c);
    pair.primary.run_until(SimTime::from_secs(60));

    let target = SimTime::from_secs(120);
    let mut image = pair.primary.fork();
    image.run_until(target);
    let want = image.state_digest();

    let (recovered, report) = pair.failover(None, target).unwrap();
    assert_eq!(recovered.state_digest(), want);
    assert_eq!(report.serving, report.detect + report.replay);
    assert!(report.tail_records > 0, "teardown shipped only at failover");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash-point fuzzing: truncate the log at an arbitrary byte offset
    /// — record boundaries, mid-record tears, inside the segment header —
    /// and recovery must either reconstruct the exact state the surviving
    /// prefix encodes (per the truth table) or, below the header, yield
    /// an empty history. Snapshot-assisted recovery must agree with full
    /// replay at every offset.
    #[test]
    fn any_crash_offset_recovers_byte_identically(cut_bp in 0u64..10_001) {
        // One shared fixture across cases (drive + truth table are
        // deterministic, so recomputing per case would only cost time).
        use std::sync::OnceLock;
        struct Fixture {
            segments: Vec<Vec<u8>>,
            records: Vec<WalRecord>,
            total: usize,
            target: SimTime,
            digests: Vec<String>,
        }
        static FIXTURE: OnceLock<Fixture> = OnceLock::new();
        let fx = FIXTURE.get_or_init(|| {
            let primary = driven_primary();
            let wal = primary.journal().expect("journal on");
            let (records, _) = Wal::decode(wal.segments()).unwrap();
            let target = primary.now();
            let digests = (0..=records.len())
                .map(|k| digest_after(&records, k, target))
                .collect();
            Fixture {
                segments: wal.segments().to_vec(),
                records,
                total: wal.total_bytes(),
                target,
                digests,
            }
        });

        // cut_bp is basis points of the log length: 0 ..= 100.00 %.
        let cut = (fx.total as u64 * cut_bp / 10_000) as usize;
        // Borrowed truncation view — the crash harness copies no bytes.
        let surviving: Vec<&[u8]> = Wal::truncate_segments(&fx.segments, cut);

        // Cold, snapshot-free recovery.
        let cold = recover(genesis, &surviving, &SnapshotStore::new(0), fx.target, WalConfig::default())
            .expect("every truncation of the final segment is recoverable");
        let k = cold.replayed as usize;
        prop_assert!(k <= fx.records.len());
        prop_assert_eq!(&cold.controller.state_digest(), &fx.digests[k]);
        if cut == fx.total {
            prop_assert_eq!(k, fx.records.len());
            prop_assert!(!cold.rolled_back_tail);
        }

        // Snapshot-assisted recovery lands on the same bytes.
        let mut store = SnapshotStore::new(0);
        let mut replica = genesis();
        for (i, rec) in fx.records.iter().enumerate() {
            replay(&mut replica, std::slice::from_ref(rec)).unwrap();
            if (i + 1) % 3 == 0 {
                store.capture_at(&replica, (i + 1) as u64);
            }
        }
        let snap = recover(genesis, &surviving, &store, fx.target, WalConfig::default())
            .expect("snapshot recovery holds wherever cold recovery does");
        prop_assert_eq!(snap.snapshot_seq.unwrap_or(0) + snap.replayed, k as u64);
        prop_assert_eq!(&snap.controller.state_digest(), &fx.digests[k]);
    }
}
