//! Quickstart: bring up the paper's testbed, order a 10 G wavelength
//! between two data centers, watch it activate in ~62 s of simulated
//! time, then tear it down.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use griphon::controller::{Controller, ControllerConfig};
use photonic::{LineRate, PhotonicNetwork};
use simcore::DataRate;

fn main() {
    // The Fig. 4 laboratory testbed: ROADMs I–IV, 4 transponders each.
    let (net, ids) = PhotonicNetwork::testbed(4);
    println!("{}", net.render_ascii());

    let mut ctl = Controller::new(net, ControllerConfig::default());
    let csp = ctl.tenants.register("acme-cloud", DataRate::from_gbps(100));

    // Order a 10 G wavelength between the DCs at nodes I and IV.
    let conn = ctl
        .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
        .expect("testbed has capacity");
    println!("ordered {conn}; provisioning…\n");
    println!("{}", ctl.customer_view(csp));

    // Run the event loop: EMS session, FXC switching, ROADM configs,
    // laser tuning, validation, equalization.
    ctl.run_until_idle();
    let c = ctl.connection(conn).unwrap();
    println!(
        "active after {:.2} s (paper: 62.48 s for this 1-hop path)\n",
        c.activated_at.unwrap().since(c.requested_at).as_secs_f64()
    );
    println!("{}", ctl.customer_view(csp));

    // Release it — around 10 s.
    let t0 = ctl.now();
    ctl.request_teardown(conn).unwrap();
    ctl.run_until_idle();
    println!(
        "released after {:.2} s (paper: ≈10 s)",
        ctl.now().since(t0).as_secs_f64()
    );

    println!("\ncontroller trace:");
    for e in ctl.trace.events() {
        println!("  {e}");
    }
}
