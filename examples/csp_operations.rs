//! A CSP's whole operations loop: three data centers behind access
//! pipes, a geo-redundancy replication policy generating the transfer
//! work, the deadline-aware BoD scheduler moving it, and the carrier's
//! and customer's views of the result.
//!
//! ```sh
//! cargo run --example csp_operations
//! ```

use cloud::replication::ReplicationPolicy;
use cloud::scheduler::DeadlineBodPolicy;
use cloud::{CspPortal, DataCenterSet};
use griphon::controller::{Controller, ControllerConfig};
use photonic::{LineRate, PhotonicNetwork};
use simcore::{DataRate, DataSize, SimDuration};

fn main() {
    // Carrier side: the NSFNET backbone with OTN switches at three PoPs.
    let net = PhotonicNetwork::nsfnet(8, LineRate::Gbps10, 3);
    let ashburn_pop = net.roadm_by_name("CollegePark").unwrap();
    let dallas_pop = net.roadm_by_name("Houston").unwrap();
    let sanjose_pop = net.roadm_by_name("PaloAlto").unwrap();
    let mut ctl = Controller::new(net, ControllerConfig::default());
    for pop in [ashburn_pop, dallas_pop, sanjose_pop] {
        ctl.add_otn_switch(pop, DataRate::from_gbps(320));
    }
    ctl.provision_trunk(ashburn_pop, dallas_pop, LineRate::Gbps10)
        .unwrap();
    ctl.provision_trunk(dallas_pop, sanjose_pop, LineRate::Gbps10)
        .unwrap();
    ctl.run_until_idle();
    let account = ctl.tenants.register("acme-cloud", DataRate::from_gbps(300));

    // CSP side: sites and access pipes.
    let mut dcs = DataCenterSet::new();
    let ash = dcs.add("ashburn", ashburn_pop, DataRate::from_gbps(40));
    let dal = dcs.add("dallas", dallas_pop, DataRate::from_gbps(40));
    let sjc = dcs.add("sanjose", sanjose_pop, DataRate::from_gbps(25));
    let mut portal = CspPortal::new(account, dcs);

    // Standing connectivity: a 12 G bundle Ashburn↔Dallas through the
    // portal (access-pipe checked).
    let order = portal
        .order(&mut ctl, ash, dal, DataRate::from_gbps(12))
        .expect("pipes have headroom");
    ctl.run_until_idle();
    println!(
        "standing order {order}: headroom now ashburn={} dallas={} sanjose={}",
        portal.headroom(ash),
        portal.headroom(dal),
        portal.headroom(sjc)
    );

    // Replication policy: geo-redundant deltas, 2 copies, plus a weekly
    // 20 TB VoD push from Ashburn.
    let geo = ReplicationPolicy::GeoRedundant {
        copies: 2,
        ingest_rate: DataRate::from_gbps(2),
        batch: DataSize::from_terabytes(4),
    };
    let horizon = SimDuration::from_hours(48);
    let mut next_id = 0;
    let jobs = geo.jobs(&portal.dcs, horizon, &mut next_id);
    println!(
        "\ngeo-redundancy generates {} delta jobs ({:.0} TB) over 48 h",
        jobs.len(),
        geo.bytes_over(&portal.dcs, horizon).terabytes_f64()
    );

    // Move the Ashburn→Dallas share with the deadline-aware policy.
    let ash_dal: Vec<_> = jobs
        .iter()
        .filter(|j| j.from == ash && j.to == dal)
        .cloned()
        .collect();
    let n = ash_dal.len();
    let outcome = DeadlineBodPolicy::default().run(
        &mut ctl,
        account,
        ashburn_pop,
        dallas_pop,
        ash_dal,
        horizon,
        SimDuration::from_secs(60),
    );
    println!(
        "moved {}/{} ashburn→dallas deltas; mean completion {:.2} h; {:.1} Gbps·h held over {} setups",
        outcome.log.completed, n,
        outcome.log.mean_completion_secs / 3600.0,
        outcome.gbps_hours,
        outcome.setups
    );

    // The two views of the same world.
    println!("\n{}", ctl.customer_view(account));
    let sla = ctl.sla_report(account);
    println!(
        "SLA so far: {:.5} aggregate ({})",
        sla.aggregate,
        griphon::nines(sla.aggregate)
    );
    println!("\n{}", ctl.carrier_view());
}
