//! The carrier's planning workbench (§4, *Network resource planning*):
//! forecast demand from history, size transponder pools with Erlang-B,
//! place a spare budget greedily, and sanity-check the prediction
//! against a simulated arrival process.
//!
//! ```sh
//! cargo run --example planning_workbench
//! ```

use griphon::controller::{Controller, ControllerConfig};
use griphon::planning::{
    erlang_b, forecast_linear, servers_for_blocking, NodeDemand, SparePlanner,
};
use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};
use simcore::{DataRate, SimDuration, SimRng, SimTime};

fn main() {
    // 1. Forecast: quarterly inter-DC demand history (erlangs of OT
    //    usage), growing the way the paper's Forrester citation projects
    //    ("double or triple in the next two to four years").
    let history = [3.0, 3.6, 4.1, 4.9, 5.8];
    let forecast = forecast_linear(&history, 4);
    println!("demand history (erlangs/quarter): {history:?}");
    let pretty: Vec<String> = forecast.iter().map(|f| format!("{f:.2}")).collect();
    println!(
        "forecast next 4 quarters:         [{}]\n",
        pretty.join(", ")
    );

    // 2. Size pools for 1% blocking at the forecast horizon.
    let horizon_demand = *forecast.last().unwrap();
    let needed = servers_for_blocking(horizon_demand, 0.01, 64).unwrap();
    println!(
        "{horizon_demand:.1} erlangs at 1% blocking needs {needed} OTs \
         (B = {:.4})\n",
        erlang_b(horizon_demand, needed)
    );

    // 3. Place a budget of 12 spares over three PoPs with different
    //    loads and weights.
    let planner = SparePlanner {
        demands: vec![
            NodeDemand {
                erlangs: 6.0,
                weight: 3.0,
            }, // premium hub
            NodeDemand {
                erlangs: 4.0,
                weight: 1.0,
            },
            NodeDemand {
                erlangs: 2.0,
                weight: 1.0,
            },
        ],
    };
    let base = [2usize, 2, 2];
    let placed = planner.place(&base, 12);
    println!("spare placement over PoPs (base {base:?} + 12): {placed:?}");
    println!(
        "weighted blocking: before {:.4}, after {:.4}\n",
        planner.weighted_blocking(&base),
        planner.weighted_blocking(&placed)
    );

    // 4. Validate: drive a two-node plant with Poisson arrivals at the
    //    forecast load and compare measured blocking with Erlang-B.
    let n_ots = 8usize;
    let offered = 5.8f64;
    let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
    let a = net.add_roadm("a");
    let b = net.add_roadm("b");
    net.link(a, b, 80.0).unwrap();
    net.add_transponders(a, LineRate::Gbps10, n_ots).unwrap();
    net.add_transponders(b, LineRate::Gbps10, n_ots).unwrap();
    let mut ctl = Controller::new(
        net,
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        },
    );
    let csp = ctl.tenants.register("pool", DataRate::from_gbps(100_000));
    let mut rng = SimRng::new(7);
    let hold_mean = 7_200.0;
    let gap_mean = hold_mean / offered;
    let mut t = SimTime::ZERO;
    let mut departures: Vec<(SimTime, griphon::ConnectionId)> = Vec::new();
    let arrivals = 800;
    let mut blocked = 0;
    for _ in 0..arrivals {
        t += SimDuration::from_secs_f64(rng.exp(gap_mean));
        departures.sort_by_key(|(d, _)| *d);
        while let Some((d, id)) = departures.first().copied() {
            if d <= t {
                ctl.run_until(d);
                let _ = ctl.request_teardown(id);
                departures.remove(0);
            } else {
                break;
            }
        }
        ctl.run_until(t);
        match ctl.request_wavelength(csp, a, b, LineRate::Gbps10) {
            Ok(id) => departures.push((t + SimDuration::from_secs_f64(rng.exp(hold_mean)), id)),
            Err(_) => blocked += 1,
        }
    }
    let measured = blocked as f64 / arrivals as f64;
    println!(
        "validation at {offered} erlangs / {n_ots} OTs over {arrivals} arrivals:\n\
         Erlang-B predicts {:.3}, simulation measures {measured:.3}",
        erlang_b(offered, n_ots)
    );
}
