//! Planned maintenance with bridge-and-roll: drain a fiber that carries
//! live wavelengths, watch every connection move almost hitlessly, do
//! the maintenance, return the fiber to service, and re-groom.
//!
//! ```sh
//! cargo run --example maintenance_window
//! ```

use griphon::controller::{Controller, ControllerConfig};
use photonic::{FiberState, LineRate, PhotonicNetwork};
use simcore::DataRate;

fn main() {
    let (net, ids) = PhotonicNetwork::testbed(8);
    let mut ctl = Controller::new(net, ControllerConfig::default());
    let csp = ctl.tenants.register("acme-cloud", DataRate::from_gbps(100));

    // Two live wavelengths on the direct I–IV fiber.
    let conns: Vec<_> = (0..2)
        .map(|_| {
            ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                .unwrap()
        })
        .collect();
    ctl.run_until_idle();
    for id in &conns {
        println!(
            "{id} active on {} hops",
            ctl.connection(*id)
                .unwrap()
                .wavelength_plan()
                .unwrap()
                .hops()
        );
    }

    // Drain the fiber: bridge-and-roll both connections away.
    println!("\ndraining fiber I–IV for maintenance…");
    let moved = ctl.start_fiber_maintenance(ids.f_i_iv).unwrap();
    ctl.run_until_idle();
    assert!(matches!(
        ctl.net.fiber(ids.f_i_iv).state,
        FiberState::Maintenance
    ));
    println!(
        "moved {} connections; fiber now in maintenance",
        moved.len()
    );
    let hit = ctl.metrics.get_histogram("maintenance.hit_ms").unwrap();
    println!(
        "service hit per move: mean {:.0} ms, max {:.0} ms — \"almost hitless\"",
        hit.mean(),
        hit.max()
    );
    for id in &conns {
        let c = ctl.connection(*id).unwrap();
        println!(
            "  {id}: outage accumulated {}, now on {} hops",
            c.outage_total,
            c.wavelength_plan().unwrap().hops()
        );
    }

    // Maintenance done: fiber back, re-groom onto the short path.
    println!("\nmaintenance complete; returning fiber and re-grooming…");
    ctl.end_fiber_maintenance(ids.f_i_iv);
    for id in &conns {
        if let Some(saved_km) = ctl.regroom(*id).unwrap() {
            println!("  {id}: migrating back, saving {saved_km:.0} km");
        }
    }
    ctl.run_until_idle();
    for id in &conns {
        println!(
            "  {id}: on {} hops again",
            ctl.connection(*id)
                .unwrap()
                .wavelength_plan()
                .unwrap()
                .hops()
        );
    }
}
