//! Advance reservations: book tomorrow's 02:00 backup window today.
//! The controller provisions the bundle two minutes ahead so the full
//! rate is in service the second the window opens — only possible
//! because GRIPhoN brings wavelength provisioning from weeks to about a
//! minute.
//!
//! ```sh
//! cargo run --example advance_reservation
//! ```

use griphon::controller::{Controller, ControllerConfig};
use griphon::ReservationState;
use photonic::{LineRate, PhotonicNetwork};
use simcore::{DataRate, SimDuration, SimTime};

fn main() {
    let (net, ids) = PhotonicNetwork::testbed(10);
    let mut ctl = Controller::new(net, ControllerConfig::default());
    ctl.add_otn_switch(ids.i, DataRate::from_gbps(320));
    ctl.add_otn_switch(ids.iv, DataRate::from_gbps(320));
    ctl.provision_trunk(ids.i, ids.iv, LineRate::Gbps10)
        .unwrap();
    ctl.run_until_idle();

    let acme = ctl.tenants.register("acme-cloud", DataRate::from_gbps(200));
    let bravo = ctl
        .tenants
        .register("bravo-video", DataRate::from_gbps(200));
    ctl.set_booking_capacity(ids.i, ids.iv, DataRate::from_gbps(30));

    // Acme books 12 G for the 02:00–06:00 backup window, every night
    // for two nights.
    let mut bookings = Vec::new();
    for night in 0..2u64 {
        let start = SimTime::from_secs(night * 86_400 + 2 * 3_600);
        let end = start + SimDuration::from_hours(4);
        let r = ctl
            .reserve_bandwidth(acme, ids.i, ids.iv, DataRate::from_gbps(12), start, end)
            .unwrap();
        println!("booked {r}: 12G [{start} … {end})");
        bookings.push(r);
    }

    // Bravo wants 20 G overlapping the first window — over the 30 G cap.
    let w = (SimTime::from_secs(3 * 3_600), SimTime::from_secs(5 * 3_600));
    match ctl.reserve_bandwidth(bravo, ids.i, ids.iv, DataRate::from_gbps(20), w.0, w.1) {
        Err(e) => println!("bravo-video refused: {e}"),
        Ok(_) => unreachable!("calendar admission must refuse this"),
    }
    // 18 G fits.
    let bravo_resv = ctl
        .reserve_bandwidth(bravo, ids.i, ids.iv, DataRate::from_gbps(18), w.0, w.1)
        .unwrap();
    println!("booked {bravo_resv}: 18G for bravo-video\n");

    // Watch the first window open with the rate already in service.
    let first_open = SimTime::from_secs(2 * 3_600);
    ctl.run_until(first_open);
    if let Some(r) = ctl.reservation(bookings[0]) {
        if let ReservationState::Active(bundle) = &r.state {
            println!(
                "02:00:00 — window opens with {} already active ({} members)",
                ctl.bundle_active_rate(bundle),
                bundle.members.len()
            );
        }
    }

    ctl.run_until_idle();
    for r in bookings.iter().chain([&bravo_resv]) {
        println!("{r}: {:?}", ctl.reservation(*r).unwrap().state);
    }
    println!(
        "\nreservations completed: {}; quota now committed: acme {}, bravo {}",
        ctl.metrics.counter("resv.completed").get(),
        ctl.tenants.get(acme).unwrap().in_use,
        ctl.tenants.get(bravo).unwrap().in_use,
    );
}
