//! Nightly replication with bandwidth on demand: a CSP with data centers
//! at nodes I and IV runs its 2 a.m. bulk backup through a composite
//! 12 G bundle (the paper's 2×1G OTN + 1×10G λ example), then releases
//! everything once the backlog drains.
//!
//! ```sh
//! cargo run --example replication_burst
//! ```

use cloud::scheduler::BodPolicy;
use cloud::workload::{WorkloadConfig, WorkloadGenerator};
use cloud::{CostModel, DataCenterSet};
use griphon::controller::{Controller, ControllerConfig};
use photonic::{LineRate, PhotonicNetwork};
use simcore::{DataRate, DataSize, SimDuration};

fn main() {
    let (net, ids) = PhotonicNetwork::testbed(10);
    let mut ctl = Controller::new(net, ControllerConfig::default());

    // OTN switches + a trunk so sub-wavelength service exists too.
    ctl.add_otn_switch(ids.i, DataRate::from_gbps(320));
    ctl.add_otn_switch(ids.iv, DataRate::from_gbps(320));
    ctl.provision_trunk(ids.i, ids.iv, LineRate::Gbps10)
        .expect("trunk plannable");
    ctl.run_until_idle();

    let csp = ctl.tenants.register("acme-cloud", DataRate::from_gbps(400));

    // Two DC sites with 40 G access pipes.
    let mut dcs = DataCenterSet::new();
    let dc_a = dcs.add("ashburn", ids.i, DataRate::from_gbps(40));
    let dc_b = dcs.add("portland", ids.iv, DataRate::from_gbps(40));

    // First: the paper's composite example — a 12 G bundle.
    let bundle = ctl
        .request_bandwidth(csp, ids.i, ids.iv, DataRate::from_gbps(12))
        .expect("bundle plannable");
    ctl.run_until_idle();
    println!(
        "composite bundle: {} members delivering {} (1×10G λ + 2×1G OTN)\n",
        bundle.members.len(),
        ctl.bundle_active_rate(&bundle)
    );
    ctl.release_bundle(&bundle);
    ctl.run_until_idle();

    // Then: three nights of backups, moved by the BoD policy.
    let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 42);
    let jobs = gen.nightly_backups(&[(dc_a, dc_b)], DataSize::from_terabytes(30), 3);
    println!(
        "{} nightly 30 TB backup jobs (2 a.m., 4 h deadline)",
        jobs.len()
    );

    let policy = BodPolicy {
        max_rate: DataRate::from_gbps(40),
        drain_target: SimDuration::from_mins(45),
        idle_release: SimDuration::from_mins(10),
    };
    let outcome = policy.run(
        &mut ctl,
        csp,
        ids.i,
        ids.iv,
        jobs,
        SimDuration::from_hours(3 * 24 + 12),
        SimDuration::from_secs(60),
    );

    let cost = CostModel::default();
    println!(
        "completed {}/{} jobs; mean completion {:.2} h; deadlines met {:.0}%",
        outcome.log.completed,
        outcome.log.completed + outcome.log.unfinished,
        outcome.log.mean_completion_secs / 3600.0,
        outcome.log.deadline_hit_rate * 100.0
    );
    println!(
        "bandwidth held: {:.1} Gbps·h over 3.5 days (peak {} Gbps), {} setups",
        outcome.gbps_hours, outcome.peak_gbps, outcome.setups
    );
    let bod_cost = cost.bod_cost(outcome.gbps_hours, outcome.setups);
    let leased = cost.leased_cost(outcome.peak_gbps, 84.0);
    println!(
        "BoD cost {bod_cost:.0} vs {leased:.0} to lease the same peak flat ({:.0}% saved)",
        (1.0 - bod_cost / leased) * 100.0
    );
}
