//! Failure and restoration: cut a fiber under three live wavelengths,
//! watch the alarm storm get localized to a root cause, and compare
//! GRIPhoN's automated restoration against today's wait-for-the-repair-
//! crew reality.
//!
//! ```sh
//! cargo run --example failure_restoration
//! ```

use griphon::controller::{Controller, ControllerConfig};
use griphon::ConnState;
use photonic::{LineRate, PhotonicNetwork};
use simcore::{DataRate, SimDuration};

fn scenario(auto_restore: bool) -> (Controller, Vec<griphon::ConnectionId>) {
    let (net, ids) = PhotonicNetwork::testbed(8);
    let mut ctl = Controller::new(
        net,
        ControllerConfig {
            auto_restore,
            ..ControllerConfig::default()
        },
    );
    let csp = ctl.tenants.register("acme-cloud", DataRate::from_gbps(100));
    let conns: Vec<_> = (0..3)
        .map(|_| {
            ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                .unwrap()
        })
        .collect();
    ctl.run_until_idle();
    // The backhoe strikes the direct I–IV fiber.
    ctl.inject_fiber_cut(ids.f_i_iv, 0);
    // Either way, the crew takes 8 hours.
    ctl.schedule_repair(ids.f_i_iv, SimDuration::from_hours(8));
    (ctl, conns)
}

fn main() {
    println!("=== GRIPhoN: automated restoration ===");
    let (mut ctl, conns) = scenario(true);
    ctl.run_until_idle();
    for id in &conns {
        let c = ctl.connection(*id).unwrap();
        assert_eq!(c.state, ConnState::Active);
        println!(
            "  {id}: outage {} (restored over {} hops)",
            c.outage_total,
            c.wavelength_plan().unwrap().hops()
        );
    }
    println!("\nfault-management trace:");
    for e in ctl.trace.in_category("fault") {
        println!("  {e}");
    }
    println!(
        "\nalarms correlated: {}",
        ctl.metrics.counter("fault.alarms").get()
    );

    println!("\n=== Today's reality: manual repair ===");
    let (mut manual, conns) = scenario(false);
    manual.run_until_idle();
    for id in &conns {
        let c = manual.connection(*id).unwrap();
        println!(
            "  {id}: outage {} ({:.1} hours)",
            c.outage_total,
            c.outage_total.as_secs_f64() / 3600.0
        );
    }
    println!("\nGRIPhoN turned an 8-hour outage into about a minute per circuit.");
}
