//! Multi-tenant operation on the NSFNET backbone: three cloud providers
//! share one GRIPhoN plant; quotas isolate them, the customer GUI shows
//! each only its own connections, and the carrier's inventory snapshot
//! shows the pooled view.
//!
//! ```sh
//! cargo run --example multi_tenant
//! ```

use griphon::controller::{Controller, ControllerConfig};
use griphon::{InventorySnapshot, RequestError};
use photonic::{LineRate, PhotonicNetwork};
use simcore::DataRate;

fn main() {
    // Continental backbone with regens (40 G has ~1,500 km reach).
    let net = PhotonicNetwork::nsfnet(6, LineRate::Gbps10, 2);
    let seattle = net.roadm_by_name("Seattle").unwrap();
    let princeton = net.roadm_by_name("Princeton").unwrap();
    let houston = net.roadm_by_name("Houston").unwrap();
    let atlanta = net.roadm_by_name("Atlanta").unwrap();

    let mut ctl = Controller::new(net, ControllerConfig::default());
    let acme = ctl.tenants.register("acme-cloud", DataRate::from_gbps(30));
    let bravo = ctl.tenants.register("bravo-video", DataRate::from_gbps(20));
    let tiny = ctl
        .tenants
        .register("tiny-startup", DataRate::from_gbps(10));

    // Acme: coast-to-coast replication pair.
    ctl.request_wavelength(acme, seattle, princeton, LineRate::Gbps10)
        .unwrap();
    ctl.request_wavelength(acme, seattle, houston, LineRate::Gbps10)
        .unwrap();
    // Bravo: CDN fill Atlanta → Houston.
    ctl.request_wavelength(bravo, atlanta, houston, LineRate::Gbps10)
        .unwrap();
    // Tiny: asks for more than its quota allows.
    ctl.request_wavelength(tiny, seattle, princeton, LineRate::Gbps10)
        .unwrap();
    match ctl.request_wavelength(tiny, seattle, atlanta, LineRate::Gbps10) {
        Err(RequestError::Admission(e)) => println!("tiny-startup refused: {e}\n"),
        other => panic!("expected quota refusal, got {other:?}"),
    }

    ctl.run_until_idle();

    // Each tenant sees only its own world.
    for t in [acme, bravo, tiny] {
        println!("{}", ctl.customer_view(t));
    }

    // The carrier sees the pooled inventory.
    let snap = InventorySnapshot::capture(&ctl);
    println!(
        "carrier inventory: {} idle OTs, {} regens ({} in use)",
        snap.idle_ots(),
        snap.regens.0,
        snap.regens.1
    );
    let busiest = snap
        .fibers
        .values()
        .max_by_key(|f| f.lit)
        .expect("fibers exist");
    println!(
        "busiest fiber: {}–{} with {}/{} wavelengths lit",
        busiest.between.0, busiest.between.1, busiest.lit, busiest.capacity
    );
    println!(
        "\nJSON snapshot excerpt:\n{}…",
        &snap.to_json()[..400.min(snap.to_json().len())]
    );
}
